"""Unit tests for the baseline strategies."""

from __future__ import annotations

import pytest

from conftest import nx_cliques
from repro.baselines.exact import exact_mce
from repro.baselines.naive_blocks import naive_block_mce
from repro.baselines.networkx_mce import from_networkx, networkx_cliques, to_networkx
from repro.core.driver import find_max_cliques
from repro.graph.adjacency import Graph
from repro.graph.generators import complete_graph, erdos_renyi, social_network
from repro.mce.registry import Combo


class TestExact:
    def test_matches_networkx(self):
        g = erdos_renyi(30, 0.25, seed=2)
        result = exact_mce(g)
        assert set(result.cliques) == nx_cliques(g)
        assert result.seconds > 0.0
        assert result.num_cliques == len(result.cliques)

    def test_custom_combo(self):
        g = complete_graph(5)
        combo = Combo("eppstein", "lists")
        result = exact_mce(g, combo=combo)
        assert result.combo == combo
        assert result.cliques == [frozenset(range(5))]


class TestNetworkxBridge:
    def test_roundtrip(self):
        g = erdos_renyi(20, 0.3, seed=3)
        assert from_networkx(to_networkx(g)) == g

    def test_cliques_match_internal(self):
        g = erdos_renyi(20, 0.3, seed=4)
        assert networkx_cliques(g) == set(exact_mce(g).cliques)


class TestNaiveBlocks:
    def test_misses_hub_cliques(self):
        # The central claim of the paper: with small blocks, the
        # hub-oblivious baseline loses maximal cliques that the two-level
        # decomposition keeps.
        g = social_network(150, attachment=4, planted_cliques=(10,), seed=5)
        m = 20
        reference = nx_cliques(g)
        ours = find_max_cliques(g, m)
        naive = naive_block_mce(g, m)
        assert set(ours.cliques) == reference  # complete
        assert naive.missed(reference), "expected the baseline to miss cliques"

    def test_reports_spurious_cliques(self):
        g = social_network(150, attachment=4, planted_cliques=(10,), seed=5)
        naive = naive_block_mce(g, 20)
        assert naive.spurious(g), "expected non-maximal output"

    def test_truncation_counted(self):
        g = social_network(150, attachment=4, seed=6)
        naive = naive_block_mce(g, 15)
        assert naive.truncated_blocks > 0

    def test_correct_when_m_huge(self):
        # With blocks large enough for every neighbourhood, the naive
        # strategy is complete — the failure is specifically about hubs.
        g = erdos_renyi(25, 0.2, seed=7)
        naive = naive_block_mce(g, m=1000)
        assert set(naive.cliques) == nx_cliques(g)
        assert naive.truncated_blocks == 0

    def test_no_duplicates(self):
        g = erdos_renyi(30, 0.25, seed=8)
        naive = naive_block_mce(g, 12)
        assert len(naive.cliques) == len(set(naive.cliques))

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            naive_block_mce(Graph(), 1)

    def test_every_node_kernel_once(self):
        g = erdos_renyi(30, 0.25, seed=9)
        naive = naive_block_mce(g, 12)
        kernels = [n for b in naive.blocks for n in b.kernel]
        assert sorted(kernels, key=str) == sorted(g.nodes(), key=str)

    def test_deque_bfs_matches_list_queue(self):
        # The BFS queue moved from list.pop(0) (O(n) per dequeue) to
        # collections.deque.popleft(); both are FIFO, so the grown blocks
        # must be identical node for node.
        from repro.baselines.naive_blocks import _build_naive_blocks
        from repro.graph.views import induced_subgraph

        def reference_blocks(graph, m):
            # The pre-deque implementation, kept verbatim as the oracle.
            unassigned = dict.fromkeys(graph.nodes())
            out = []
            while unassigned:
                seed = next(iter(unassigned))
                kernel, members = [], set()
                queue = [seed]
                while queue and len(members) < m:
                    node = queue.pop(0)
                    if node in unassigned:
                        del unassigned[node]
                        kernel.append(node)
                        members.add(node)
                        for neighbor in sorted(graph.neighbors(node), key=str):
                            if neighbor in members:
                                continue
                            if len(members) >= m:
                                break
                            members.add(neighbor)
                            if neighbor in unassigned:
                                queue.append(neighbor)
                out.append((tuple(kernel), frozenset(members)))
            return out

        for seed in (3, 11, 29):
            g = erdos_renyi(40, 0.15, seed=seed)
            expected = reference_blocks(g, 12)
            actual = [
                (b.kernel, frozenset(b.graph.nodes()))
                for b in _build_naive_blocks(g, 12)
            ]
            assert [(k, m) for k, m in expected] == actual

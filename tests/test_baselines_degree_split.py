"""Unit tests for the Chang-style degree-split baseline."""

from __future__ import annotations

import pytest

from conftest import FIGURE1_CLIQUES, nx_cliques
from repro.baselines.degree_split import degree_split_mce
from repro.graph.adjacency import Graph
from repro.graph.cores import degeneracy
from repro.graph.generators import complete_graph, erdos_renyi, social_network


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("threshold", [3, 6, 12, 100])
    def test_matches_networkx(self, seed, threshold):
        g = erdos_renyi(25, 0.3, seed=seed)
        result = degree_split_mce(g, threshold)
        assert len(result.cliques) == len(set(result.cliques))
        assert set(result.cliques) == nx_cliques(g)

    def test_figure1(self, figure1):
        result = degree_split_mce(figure1, 5)
        assert set(result.cliques) == FIGURE1_CLIQUES

    def test_social_network(self):
        g = social_network(150, attachment=3, planted_cliques=(9,), seed=4)
        result = degree_split_mce(g, 25)
        assert set(result.cliques) == nx_cliques(g)

    def test_residual_core_finished_exactly(self):
        # threshold below the degeneracy: the split makes no progress on
        # the core, which must still be enumerated correctly.
        g = complete_graph(8)
        result = degree_split_mce(g, 4)
        assert result.cliques == [frozenset(range(8))]

    def test_empty_graph(self):
        result = degree_split_mce(Graph(), 3)
        assert result.cliques == []
        assert result.rounds == 0


class TestRounds:
    def test_rounds_grow_as_threshold_falls(self):
        g = social_network(200, attachment=4, seed=5)
        low_threshold = degeneracy(g) + 1
        high_threshold = g.max_degree() + 1
        shallow = degree_split_mce(g, high_threshold)
        deep = degree_split_mce(g, low_threshold)
        assert shallow.rounds <= deep.rounds
        assert shallow.rounds == 1  # everything is low-degree

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            degree_split_mce(Graph(), 0)

    def test_timing_recorded(self):
        g = erdos_renyi(20, 0.3, seed=6)
        result = degree_split_mce(g, 10)
        assert result.seconds > 0.0
        assert result.num_cliques == len(result.cliques)

"""Tests for multi-block batched dispatch (bucketing, kernel, executors).

The invariant under test everywhere: fusing many small same-shape blocks
into one multi-block kernel run changes *nothing* about the per-block
output — the clique sets, the selected combos, and the extracted
features must be identical to the per-block path, and every block id
must come back exactly once.
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.block_analysis import (
    BlockBucket,
    analyze_block_csr,
    analyze_bucket_csr,
    form_buckets,
    padded_size,
)
from repro.core.blocks import blocks_csr
from repro.core.driver import find_max_cliques
from repro.core.feasibility import cut_csr
from repro.distributed.executor import SerialExecutor, SharedMemoryExecutor
from repro.distributed.scheduler import BatchAccumulator
from repro.errors import ExecutorError, SchedulingError
from repro.graph.adjacency import Graph
from repro.graph.csr import BitmapScratch, CSRGraph
from repro.graph.generators import erdos_renyi
from repro.mce.backends import build_backend
from repro.mce.bitmatrix import expand_batched
from repro.mce.registry import Combo

from differential import canonical_cliques


def _er(n: int, p: float, seed: int) -> Graph:
    return erdos_renyi(n, p, seed=seed)


def _descriptors(csr: CSRGraph, m: int):
    feasible_ids, _ = cut_csr(csr, m)
    return list(blocks_csr(csr, feasible_ids, m))


class TestPaddedSize:
    def test_rounds_up_to_quantum(self):
        assert padded_size(1) == 8
        assert padded_size(8) == 8
        assert padded_size(9) == 16
        assert padded_size(64) == 64
        assert padded_size(65) == 72

    @given(size=st.integers(min_value=1, max_value=4096))
    def test_pad_dominates_and_is_tight(self, size):
        pad = padded_size(size)
        assert pad >= size
        assert pad % 8 == 0
        assert pad - size < 8 or pad == 8


class TestFormBuckets:
    def test_partition_is_exact(self):
        csr = CSRGraph(_er(80, 0.1, seed=1))
        descriptors = _descriptors(csr, 12)
        buckets, large = form_buckets(descriptors, cutoff=10)
        bucketed = [d.block_id for b in buckets for d in b.descriptors]
        loose = [d.block_id for d in large]
        # Every block id exactly once, across the two partitions.
        assert sorted(bucketed + loose) == sorted(d.block_id for d in descriptors)
        for bucket in buckets:
            assert all(
                padded_size(d.size) == bucket.n_pad for d in bucket.descriptors
            )
            assert all(d.size <= 10 for d in bucket.descriptors)
        assert all(d.size > 10 for d in large)

    def test_max_bucket_chunks_popular_shapes(self):
        csr = CSRGraph(_er(120, 0.05, seed=2))
        descriptors = _descriptors(csr, 10)
        buckets, _ = form_buckets(descriptors, cutoff=64, max_bucket=3)
        assert all(b.num_blocks <= 3 for b in buckets)
        unchunked, _ = form_buckets(descriptors, cutoff=64)
        assert sum(b.num_blocks for b in buckets) == sum(
            b.num_blocks for b in unchunked
        )

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        cutoff=st.integers(min_value=0, max_value=64),
        max_bucket=st.one_of(st.none(), st.integers(min_value=1, max_value=7)),
    )
    def test_round_trip_every_block_once(self, seed, cutoff, max_bucket):
        rng = random.Random(seed)
        csr = CSRGraph(_er(rng.randint(5, 60), rng.uniform(0.05, 0.3), seed=seed))
        descriptors = _descriptors(csr, rng.randint(4, 16))
        buckets, large = form_buckets(descriptors, cutoff, max_bucket=max_bucket)
        seen = [d.block_id for b in buckets for d in b.descriptors]
        seen.extend(d.block_id for d in large)
        assert sorted(seen) == sorted(d.block_id for d in descriptors)
        if max_bucket is not None:
            assert all(b.num_blocks <= max_bucket for b in buckets)


class TestAnalyzeBucketParity:
    """Fused bucket runs reproduce the per-block path exactly."""

    COMBOS = (None, Combo("tomita", "bitmatrix"), Combo("bkpivot", "lists"))

    @pytest.mark.parametrize("combo", COMBOS, ids=["tree", "tomita", "bkpivot"])
    def test_reports_match_per_block(self, combo):
        csr = CSRGraph(_er(90, 0.12, seed=5))
        descriptors = _descriptors(csr, 14)
        buckets, large = form_buckets(descriptors, cutoff=64)
        assert buckets, "test graph must produce batchable blocks"
        scratch = BitmapScratch()
        labels = csr.labels
        batched: dict[int, object] = {}
        for bucket in buckets:
            stats: dict[str, float] = {}
            reports = analyze_bucket_csr(
                bucket, csr.indptr, csr.indices, labels,
                combo=combo, scratch=scratch, batch_stats=stats,
            )
            assert stats["num_blocks"] == bucket.num_blocks
            for descriptor, report in zip(bucket.descriptors, reports):
                batched[descriptor.block_id] = report
        for descriptor in large:
            batched[descriptor.block_id] = analyze_block_csr(
                descriptor, csr.indptr, csr.indices, labels,
                combo=combo, scratch=scratch,
            )
        for descriptor in descriptors:
            reference = analyze_block_csr(
                descriptor, csr.indptr, csr.indices, labels,
                combo=combo, scratch=scratch,
            )
            report = batched[descriptor.block_id]
            assert set(report.cliques) == set(reference.cliques)
            assert report.combo.name == reference.combo.name
            assert report.features == reference.features

    def test_bucket_reports_are_marked(self):
        csr = CSRGraph(_er(60, 0.1, seed=6))
        descriptors = _descriptors(csr, 10)
        buckets, _ = form_buckets(descriptors, cutoff=64)
        reports = analyze_bucket_csr(
            buckets[0], csr.indptr, csr.indices, csr.labels
        )
        for report in reports:
            assert report.extra["batched"] == 1.0
            assert report.extra["bucket_blocks"] == float(buckets[0].num_blocks)


class TestSpineMemoryBound:
    def test_live_spines_stay_bounded_on_deep_block(self):
        # Regression: spine entries used to be retained for the whole
        # run (the docstring promised depth x batch_cap, the list grew
        # with every generation).  With eager materialization and
        # refcounting, the live count stays near the recursion depth
        # while the total keeps growing with the tree.
        graph = _er(60, 0.6, seed=1)
        backend = build_backend(graph, "bitmatrix")
        words = backend._matrix.shape[1]
        candidates = np.zeros(words, dtype=np.uint64)
        for i in range(backend.n):
            candidates[i >> 6] |= np.uint64(1) << np.uint64(i & 63)
        excluded = np.zeros(words, dtype=np.uint64)
        stats: dict[str, int] = {}
        cliques = expand_batched(
            backend, (), candidates, excluded, "tomita",
            batch_cap=32, stats=stats,
        )
        assert len(cliques) == len(set(cliques))
        assert stats["total_spines"] > 50
        # The bound that matters: live memory does not scale with the
        # number of generations produced.
        assert stats["max_live_spines"] * 10 <= stats["total_spines"]
        assert stats["max_live_spines"] <= backend.n


class TestBatchAccumulator:
    def test_releases_full_shape_group(self):
        acc = BatchAccumulator(cutoff=16, bucket_target=3)
        assert acc.push("a", 5, 8) is None
        assert acc.push("b", 6, 8) is None
        assert acc.push("c", 3, 8) == ["a", "b", "c"]
        assert len(acc) == 0

    def test_shapes_accumulate_independently(self):
        acc = BatchAccumulator(cutoff=64, bucket_target=2)
        assert acc.push("a", 5, 8) is None
        assert acc.push("b", 12, 16) is None
        assert len(acc) == 2
        assert acc.push("c", 13, 16) == ["b", "c"]
        assert acc.drain() == [["a"]]
        assert len(acc) == 0

    def test_drain_orders_smallest_shape_first(self):
        acc = BatchAccumulator(cutoff=64, bucket_target=10)
        acc.push("big", 20, 24)
        acc.push("small", 4, 8)
        assert acc.drain() == [["small"], ["big"]]

    def test_is_small(self):
        acc = BatchAccumulator(cutoff=16)
        assert acc.is_small(16)
        assert not acc.is_small(17)

    def test_invalid_parameters(self):
        with pytest.raises(SchedulingError):
            BatchAccumulator(cutoff=-1)
        with pytest.raises(SchedulingError):
            BatchAccumulator(cutoff=4, bucket_target=0)


class TestExecutorBatching:
    M = 14

    def _graph(self):
        return _er(110, 0.08, seed=9)

    def test_serial_batch_matches_reference(self):
        graph = self._graph()
        reference = canonical_cliques(find_max_cliques(graph, self.M).cliques)
        executor = SerialExecutor(batch_blocks=True, batch_cutoff=64)
        result = find_max_cliques(graph, self.M, executor=executor)
        assert canonical_cliques(result.cliques) == reference
        trace = executor.last_trace
        assert trace is not None and trace.batches
        assert trace.batched_block_count > 0

    def test_shared_batch_records_batches_and_timings(self):
        graph = self._graph()
        reference = canonical_cliques(find_max_cliques(graph, self.M).cliques)
        executor = SharedMemoryExecutor(
            max_workers=2, batch_blocks=True, batch_cutoff=64
        )
        result = find_max_cliques(graph, self.M, executor=executor)
        assert canonical_cliques(result.cliques) == reference
        trace = executor.last_trace
        assert trace.batches
        # One timing per block overall; batched blocks also counted in
        # the per-bucket records, exactly once each.
        timed = sorted(t.block_id for t in trace.timings)
        assert timed == sorted(set(timed))
        assert trace.batched_block_count <= len(timed)
        for batch in trace.batches:
            assert batch.num_blocks >= 1
            assert batch.n_pad % 8 == 0
            assert batch.sweeps >= 1

    def test_pipeline_batch_matches_reference(self):
        graph = self._graph()
        reference = canonical_cliques(find_max_cliques(graph, self.M).cliques)
        executor = SharedMemoryExecutor(
            max_workers=2, batch_blocks=True, batch_cutoff=64
        )
        result = find_max_cliques(
            graph, self.M, executor=executor, pipeline=True
        )
        assert canonical_cliques(result.cliques) == reference
        assert executor.last_trace.batches

    def test_batch_with_split_matches_reference(self):
        graph = self._graph()
        reference = canonical_cliques(find_max_cliques(graph, self.M).cliques)
        executor = SharedMemoryExecutor(
            max_workers=2,
            batch_blocks=True,
            batch_cutoff=8,  # low cutoff: large blocks stay on the split path
            split=True,
            split_threshold=0.0,
            split_subtasks=3,
        )
        result = find_max_cliques(
            graph, self.M, executor=executor, split=True, split_threshold=0.0
        )
        assert canonical_cliques(result.cliques) == reference

    def test_driver_rejects_process_executor(self):
        from repro.distributed.executor import ProcessExecutor

        with pytest.raises(ExecutorError):
            find_max_cliques(
                self._graph(), self.M,
                executor=ProcessExecutor(max_workers=2),
                batch_blocks=True,
            )

    def test_driver_configures_default_executor(self):
        graph = self._graph()
        reference = canonical_cliques(find_max_cliques(graph, self.M).cliques)
        result = find_max_cliques(graph, self.M, batch_blocks=True)
        assert canonical_cliques(result.cliques) == reference


class TestBucketBuildsDirectly:
    def test_single_block_bucket(self):
        csr = CSRGraph(_er(30, 0.2, seed=12))
        descriptors = _descriptors(csr, 8)
        bucket = BlockBucket(
            n_pad=padded_size(descriptors[0].size),
            descriptors=(descriptors[0],),
        )
        reports = analyze_bucket_csr(
            bucket, csr.indptr, csr.indices, csr.labels
        )
        reference = analyze_block_csr(
            descriptors[0], csr.indptr, csr.indices, csr.labels
        )
        assert set(reports[0].cliques) == set(reference.cliques)

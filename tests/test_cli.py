"""Unit tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.decision.paper_tree import paper_tree
from repro.decision.persistence import save_tree
from repro.graph.generators import social_network
from repro.graph.io import read_cliques, read_triples, write_triples
from repro.mce.tomita import tomita


@pytest.fixture
def triples(tmp_path):
    graph = social_network(120, attachment=3, planted_cliques=(7,), seed=3)
    path = tmp_path / "net.triples"
    write_triples(graph, path)
    return path, graph


class TestGenerate:
    @pytest.mark.parametrize(
        "args",
        [
            ["--model", "er", "--nodes", "50", "--p", "0.1"],
            ["--model", "ba", "--nodes", "50", "--attachment", "3"],
            ["--model", "ws", "--nodes", "50", "--k", "4", "--beta", "0.2"],
            ["--model", "social", "--nodes", "50", "--plant", "6"],
        ],
    )
    def test_models(self, tmp_path, args, capsys):
        out = tmp_path / "g.triples"
        code = main(["generate", *args, "--seed", "1", "--out", str(out)])
        assert code == 0
        graph = read_triples(out)
        assert graph.num_nodes == 50
        assert "wrote" in capsys.readouterr().out

    def test_dataset_model(self, tmp_path):
        out = tmp_path / "g.triples"
        code = main(
            ["generate", "--model", "dataset", "--name", "google+", "--out", str(out)]
        )
        assert code == 0
        assert read_triples(out).num_nodes == 2100

    def test_dataset_without_name_fails(self, tmp_path, capsys):
        out = tmp_path / "g.triples"
        code = main(["generate", "--model", "dataset", "--out", str(out)])
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestStats:
    def test_reports_metrics(self, triples, capsys):
        path, _graph = triples
        assert main(["stats", "--input", str(path)]) == 0
        out = capsys.readouterr().out
        for token in ("nodes", "degeneracy", "d*", "max degree"):
            assert token in out

    def test_missing_file(self, tmp_path, capsys):
        code = main(["stats", "--input", str(tmp_path / "nope.triples")])
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestEnumerate:
    def test_with_explicit_m(self, triples, tmp_path, capsys):
        path, graph = triples
        out = tmp_path / "cliques.jsonl"
        code = main(
            ["enumerate", "--input", str(path), "--m", "20", "--output", str(out)]
        )
        assert code == 0
        assert set(read_cliques(out)) == set(tomita(graph))
        assert "maximal cliques" in capsys.readouterr().out

    def test_with_ratio(self, triples, capsys):
        path, _graph = triples
        assert main(["enumerate", "--input", str(path), "--ratio", "0.5"]) == 0
        assert "maximal cliques" in capsys.readouterr().out

    def test_invalid_ratio(self, triples, capsys):
        path, _graph = triples
        assert main(["enumerate", "--input", str(path), "--ratio", "7"]) == 1
        assert "ratio" in capsys.readouterr().err

    def test_custom_tree(self, triples, tmp_path, capsys):
        path, graph = triples
        tree_path = tmp_path / "tree.json"
        save_tree(paper_tree(), tree_path)
        out = tmp_path / "cliques.jsonl"
        code = main(
            [
                "enumerate",
                "--input",
                str(path),
                "--m",
                "25",
                "--tree",
                str(tree_path),
                "--output",
                str(out),
            ]
        )
        assert code == 0
        assert set(read_cliques(out)) == set(tomita(graph))

    def test_m_and_ratio_mutually_exclusive(self, triples):
        path, _graph = triples
        with pytest.raises(SystemExit):
            main(["enumerate", "--input", str(path), "--m", "5", "--ratio", "0.5"])


class TestCompare:
    def test_detects_incompleteness(self, triples, capsys):
        from repro.graph.cores import degeneracy

        path, graph = triples
        # Small enough for hubs to exist, large enough to converge.
        m = max(degeneracy(graph) + 1, graph.max_degree() // 10)
        code = main(["compare", "--input", str(path), "--m", str(m)])
        out = capsys.readouterr().out
        assert "naive fixed blocks" in out
        assert code == 2  # the baseline misses cliques at small m

    def test_complete_when_m_huge(self, triples, capsys):
        path, _graph = triples
        code = main(["compare", "--input", str(path), "--m", "100000"])
        assert code == 0


class TestCommunities:
    def test_reports_communities(self, triples, capsys):
        path, _graph = triples
        code = main(
            ["communities", "--input", str(path), "--m", "25", "--k", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "communities covering" in out
        assert "#0:" in out

    def test_high_k_may_be_empty(self, triples, capsys):
        path, _graph = triples
        code = main(
            ["communities", "--input", str(path), "--m", "25", "--k", "30"]
        )
        assert code == 0
        assert "0 30-clique communities" in capsys.readouterr().out


class TestAudit:
    def test_clean_run(self, triples, capsys):
        path, _graph = triples
        code = main(["audit", "--input", str(path), "--m", "25"])
        assert code == 0
        assert "audit clean" in capsys.readouterr().out

    def test_skip_completeness(self, triples, capsys):
        path, _graph = triples
        code = main(
            ["audit", "--input", str(path), "--m", "25", "--skip-completeness"]
        )
        assert code == 0
        assert "completeness skipped" in capsys.readouterr().out


class TestPlan:
    def test_recommendation_printed(self, triples, capsys):
        path, _graph = triples
        code = main(["plan", "--input", str(path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "recommended m" in out
        assert "rationale:" in out

    def test_planned_m_runs_cleanly(self, triples, capsys):
        from repro.core.planner import recommend_block_size
        from repro.graph.io import read_triples as load

        path, _graph = triples
        assert main(["plan", "--input", str(path)]) == 0
        plan = recommend_block_size(load(path))
        assert (
            main(["enumerate", "--input", str(path), "--m", str(plan.m)]) == 0
        )


class TestTune:
    def test_tune_writes_a_loadable_versioned_tree(self, triples, tmp_path, capsys):
        from repro.decision.persistence import load_tree_with_metadata

        path, _graph = triples
        out = tmp_path / "tuned.json"
        code = main(
            [
                "tune",
                "--input", str(path),
                "--m", "25",
                "--sample", "3",
                "--out", str(out),
            ]
        )
        assert code == 0
        stdout = capsys.readouterr().out
        assert "harvested" in stdout
        assert "wrote tuned tree" in stdout
        tree, metadata = load_tree_with_metadata(out)
        assert tree.predict is not None
        assert metadata["trained_by"] == "repro tune"
        assert metadata["m"] == 25
        assert len(metadata["corpus_fingerprint"]) == 64
        assert metadata["rows"] > 0
        assert sum(metadata["win_counts"].values()) == metadata["blocks"]

    def test_tuned_tree_deploys_through_auto(
        self, triples, tmp_path, monkeypatch, capsys
    ):
        path, graph = triples
        out = tmp_path / "tuned.json"
        assert (
            main(
                [
                    "tune",
                    "--input", str(path),
                    "--m", "25",
                    "--sample", "2",
                    "--out", str(out),
                ]
            )
            == 0
        )
        monkeypatch.setenv("REPRO_TUNED_TREE", str(out))
        cliques = tmp_path / "cliques.jsonl"
        code = main(
            [
                "enumerate",
                "--input", str(path),
                "--m", "25",
                "--tree", "auto",
                "--output", str(cliques),
            ]
        )
        assert code == 0
        assert set(read_cliques(cliques)) == set(tomita(graph))

    def test_tune_defaults_out_to_auto_path(self, triples, tmp_path, monkeypatch):
        path, _graph = triples
        target = tmp_path / "installed.json"
        monkeypatch.setenv("REPRO_TUNED_TREE", str(target))
        code = main(
            ["tune", "--input", str(path), "--m", "25", "--sample", "2"]
        )
        assert code == 0
        assert target.exists()

    def test_invalid_ratio(self, triples, capsys):
        path, _graph = triples
        assert main(["tune", "--input", str(path), "--ratio", "7"]) == 1
        assert "ratio" in capsys.readouterr().err

    def test_spill_dir_without_segments_fails_cleanly(
        self, triples, tmp_path, capsys
    ):
        path, _graph = triples
        code = main(
            [
                "tune",
                "--input", str(path),
                "--m", "25",
                "--sample", "2",
                "--spill-dir", str(tmp_path / "empty"),
                "--out", str(tmp_path / "t.json"),
            ]
        )
        assert code == 1
        assert "no spill segments" in capsys.readouterr().err


class TestEnumerateTreeSpecs:
    def test_named_tree_spec(self, triples, capsys):
        path, _graph = triples
        code = main(
            ["enumerate", "--input", str(path), "--m", "25", "--tree", "extended"]
        )
        assert code == 0
        assert "maximal cliques" in capsys.readouterr().out

    def test_missing_tree_file_errors(self, triples, tmp_path, capsys):
        path, _graph = triples
        code = main(
            [
                "enumerate",
                "--input", str(path),
                "--m", "25",
                "--tree", str(tmp_path / "nope.json"),
            ]
        )
        assert code == 1
        assert "cannot read tree file" in capsys.readouterr().err


class TestPlanTree:
    def test_plan_with_tree_prints_selected_combo(self, triples, capsys):
        path, _graph = triples
        code = main(["plan", "--input", str(path), "--tree", "paper"])
        assert code == 0
        out = capsys.readouterr().out
        assert "selected combo" in out
        assert "selector picked" in out

    def test_plan_without_tree_unchanged(self, triples, capsys):
        path, _graph = triples
        assert main(["plan", "--input", str(path)]) == 0
        assert "selected combo" not in capsys.readouterr().out


class TestParameterValidation:
    def test_bad_generator_parameters_print_error(self, tmp_path, capsys):
        out = tmp_path / "g.triples"
        code = main(
            ["generate", "--model", "ws", "--nodes", "20", "--k", "3", "--out", str(out)]
        )
        assert code == 1
        assert "error" in capsys.readouterr().err
        assert not out.exists()


class TestMaximum:
    def test_finds_planted_clique(self, triples, capsys):
        path, graph = triples
        code = main(["maximum", "--input", str(path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "omega(G) = 7" in out  # the planted 7-clique
        assert "maximum clique" in out

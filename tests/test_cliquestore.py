"""The packed clique result plane: store, emitters, codec, parity.

Four layers of coverage:

* property-based round-trips of :class:`CliqueStore` and its emitters —
  packing any clique collection and decoding it back is the identity,
  and every aggregate (sizes, histogram, top-k, selection) agrees with
  the plain-Python computation on the decoded cliques;
* the ``RPCK`` packed segment codec — encode/decode round-trips
  (including the empty store and singleton cliques), torn-tail recovery
  on packed segments, refusal of unknown codec versions and of foreign
  payloads;
* back-compat — a spill directory written with the legacy pickled
  record format (the ``REPRO_RESULT_PLANE=frozenset`` plane) resumes
  and replays correctly under the packed plane;
* plane parity — every differential driver mode and every combo
  produces byte-identical clique sets on the packed and the frozenset
  planes.
"""

from __future__ import annotations

import pickle
import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from differential import DRIVER_MODES, canonical_cliques, run_driver
from repro.core.block_analysis import BlockReport
from repro.core.cliquestore import (
    RESULT_PLANE_ENV,
    CliqueBuffer,
    CliqueStore,
    FrozensetEmitter,
    GlobalCliqueIndex,
    make_emitter,
    packed_plane_enabled,
    store_of,
)
from repro.core.driver import find_max_cliques
from repro.decision.features import BlockFeatures
from repro.errors import CorruptSegmentError
from repro.graph.generators import social_network
from repro.mce.registry import ALL_COMBOS, Combo
from repro.runs.segments import (
    PACKED_RECORD_MAGIC,
    PACKED_RECORD_VERSION,
    SegmentWriter,
    decode_block_record,
    encode_block_record,
    recover_segment,
)

# Any hashable label type the graph generators produce.
clique_lists = st.lists(
    st.frozensets(st.integers(min_value=0, max_value=40), max_size=6),
    max_size=14,
)


def reference_features() -> BlockFeatures:
    return BlockFeatures(
        num_nodes=5, num_edges=4, density=0.4, degeneracy=2, d_star=2
    )


def packed_report(cliques, levels=None) -> BlockReport:
    """A BlockReport carrying the packed form of ``cliques``."""
    store = store_of(cliques)
    if levels is not None:
        store.levels = np.asarray(levels, dtype=np.int32)
    return BlockReport(
        cliques=store,
        combo=Combo("tomita", "lists"),
        features=reference_features(),
        seconds=0.25,
        kernel_nodes=3,
        extra={"anchors_skipped": 1.0},
    )


# ---------------------------------------------------------------------------
# CliqueStore round-trips and aggregates
# ---------------------------------------------------------------------------
class TestCliqueStore:
    @settings(max_examples=80, deadline=None)
    @given(clique_lists)
    def test_pack_decode_is_identity(self, cliques):
        store = store_of(cliques)
        assert store.to_list() == cliques
        assert list(store) == cliques
        assert len(store) == len(cliques)
        assert store == cliques

    @settings(max_examples=60, deadline=None)
    @given(clique_lists)
    def test_aggregates_match_python(self, cliques):
        store = store_of(cliques)
        sizes = [len(c) for c in cliques]
        assert store.sizes.tolist() == sizes
        assert store.max_size() == (max(sizes) if sizes else 0)
        if sizes:
            assert store.mean_size() == pytest.approx(sum(sizes) / len(sizes))
        else:
            assert store.mean_size() == 0.0
        histogram = {}
        for size in sizes:
            histogram[size] = histogram.get(size, 0) + 1
        assert store.size_histogram() == histogram

    @settings(max_examples=60, deadline=None)
    @given(clique_lists, st.integers(min_value=0, max_value=6))
    def test_top_k_covers_the_k_largest(self, cliques, k):
        store = store_of(cliques)
        indices = store.top_k(k)
        expected = sorted((len(c) for c in cliques), reverse=True)[:k]
        got = sorted((len(cliques[int(i)]) for i in indices), reverse=True)
        assert got[:k] == expected
        # Boundary ties are all present: any clique at least as large as
        # the k-th largest appears in the returned indices.
        if expected:
            threshold = expected[-1]
            covered = set(int(i) for i in indices)
            for i, clique in enumerate(cliques):
                if len(clique) >= threshold:
                    assert i in covered

    @settings(max_examples=50, deadline=None)
    @given(clique_lists)
    def test_select_by_mask_matches_comprehension(self, cliques):
        store = store_of(cliques)
        mask = np.array([len(c) % 2 == 0 for c in cliques], dtype=bool)
        assert store.select(mask).to_list() == [
            c for c, keep in zip(cliques, mask) if keep
        ]

    @settings(max_examples=50, deadline=None)
    @given(st.lists(clique_lists, max_size=4))
    def test_concat_preserves_order(self, parts):
        # One shared label space: pack all parts through one index.
        index = GlobalCliqueIndex()
        stores = [index.add(part) for part in parts]
        merged = CliqueStore.concat(stores)
        assert merged.to_list() == [c for part in parts for c in part]

    def test_empty_store(self):
        store = CliqueStore.empty()
        assert len(store) == 0
        assert store.to_list() == []
        assert store.max_size() == 0
        assert store.mean_size() == 0.0
        assert store.size_histogram() == {}
        assert store.top_k(5).tolist() == []

    def test_offsets_vertex_mismatch_is_refused(self):
        with pytest.raises(ValueError):
            CliqueStore(np.array([0, 3], dtype=np.uint64), np.array([1], dtype=np.uint32))

    def test_pickle_drops_decode_cache(self):
        store = store_of([frozenset({1, 2}), frozenset({3})])
        _ = store.to_list()
        clone = pickle.loads(pickle.dumps(store))
        assert clone._decoded is None
        assert clone.to_list() == store.to_list()


class TestEmitters:
    """Both planes, same inputs, same cliques — the emitter seam."""

    LABELS = [f"n{i}" for i in range(32)]

    def pair(self):
        return CliqueBuffer(labels=self.LABELS), FrozensetEmitter(self.LABELS)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 31), st.integers(0, 31)), max_size=8))
    def test_extend_parity(self, tuples):
        packed, legacy = self.pair()
        packed.extend(tuples)
        legacy.extend(tuples)
        assert packed.build().to_list() == legacy.build()

    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(0, 31),
        st.lists(st.tuples(st.integers(0, 31)), max_size=8),
    )
    def test_extend_prefixed_parity(self, anchor, extensions):
        packed, legacy = self.pair()
        packed.extend_prefixed(anchor, extensions)
        legacy.extend_prefixed(anchor, extensions)
        assert packed.build().to_list() == legacy.build()

    @settings(max_examples=50, deadline=None)
    @given(
        st.tuples(st.integers(0, 31), st.integers(0, 31)),
        st.integers(1, 3),
        st.integers(0, 6),
    )
    def test_append_columns_parity(self, prefix, depth, count):
        columns = [
            np.arange(count, dtype=np.uint32) % 32 for _ in range(depth)
        ]
        packed, legacy = self.pair()
        packed.append_columns(prefix, columns)
        legacy.append_columns(prefix, columns)
        assert packed.build().to_list() == legacy.build()

    def test_plane_switch(self, monkeypatch):
        monkeypatch.delenv(RESULT_PLANE_ENV, raising=False)
        assert packed_plane_enabled()
        assert isinstance(make_emitter(self.LABELS), CliqueBuffer)
        monkeypatch.setenv(RESULT_PLANE_ENV, "frozenset")
        assert not packed_plane_enabled()
        assert isinstance(make_emitter(self.LABELS), FrozensetEmitter)


class TestGlobalCliqueIndex:
    def test_overlapping_blocks_share_one_space(self):
        index = GlobalCliqueIndex()
        first = index.add([frozenset({"a", "b"}), frozenset({"b", "c"})])
        second = index.add([frozenset({"c", "d"}), frozenset({"a"})])
        assert first.to_list() == [frozenset({"a", "b"}), frozenset({"b", "c"})]
        assert second.to_list() == [frozenset({"c", "d"}), frozenset({"a"})]
        # "a" and "c" resolve to the same global id in both stores.
        merged = CliqueStore.concat([first, second])
        assert merged.to_list() == first.to_list() + second.to_list()
        assert len(index.labels) == 4


# ---------------------------------------------------------------------------
# The RPCK packed record codec
# ---------------------------------------------------------------------------
class TestPackedRecordCodec:
    @settings(max_examples=60, deadline=None)
    @given(clique_lists)
    def test_roundtrip(self, cliques):
        report = packed_report(cliques)
        payload = encode_block_record(3, 9, report)
        assert payload.startswith(PACKED_RECORD_MAGIC)
        level, block_id, back = decode_block_record(payload)
        assert (level, block_id) == (3, 9)
        assert isinstance(back.cliques, CliqueStore)
        assert back.cliques.to_list() == cliques
        assert back.seconds == report.seconds
        assert back.kernel_nodes == report.kernel_nodes
        assert back.extra == report.extra
        assert back.combo.name == report.combo.name

    def test_empty_store_roundtrip(self):
        _, _, back = decode_block_record(
            encode_block_record(0, 0, packed_report([]))
        )
        assert back.cliques.to_list() == []

    def test_singleton_cliques_roundtrip(self):
        cliques = [frozenset({i}) for i in range(5)]
        _, _, back = decode_block_record(
            encode_block_record(1, 2, packed_report(cliques))
        )
        assert back.cliques.to_list() == cliques

    def test_levels_survive_the_roundtrip(self):
        report = packed_report(
            [frozenset({1, 2}), frozenset({3})], levels=[0, 2]
        )
        _, _, back = decode_block_record(encode_block_record(0, 1, report))
        assert back.cliques.levels.tolist() == [0, 2]

    def test_legacy_pickled_record_still_decodes(self):
        legacy = BlockReport(
            cliques=[frozenset({1, 2, 3})],
            combo=Combo("tomita", "lists"),
            features=reference_features(),
            seconds=0.5,
        )
        payload = pickle.dumps((4, 2, legacy), protocol=pickle.HIGHEST_PROTOCOL)
        level, block_id, back = decode_block_record(payload)
        assert (level, block_id) == (4, 2)
        assert back.cliques == [frozenset({1, 2, 3})]

    def test_unknown_codec_version_is_refused(self):
        payload = bytearray(encode_block_record(0, 0, packed_report([frozenset({1})])))
        struct.pack_into("<H", payload, len(PACKED_RECORD_MAGIC), PACKED_RECORD_VERSION + 1)
        with pytest.raises(CorruptSegmentError, match="unknown packed block record version"):
            decode_block_record(bytes(payload))

    @settings(max_examples=60, deadline=None)
    @given(st.binary(max_size=120))
    def test_foreign_rpck_payload_is_refused(self, junk):
        with pytest.raises(CorruptSegmentError):
            decode_block_record(PACKED_RECORD_MAGIC + junk)

    def test_truncated_packed_payload_is_refused(self):
        payload = encode_block_record(0, 0, packed_report([frozenset({1, 2})]))
        for cut in (5, 12, len(payload) // 2, len(payload) - 1):
            with pytest.raises(CorruptSegmentError):
                decode_block_record(payload[:cut])


class TestPackedSegmentRecovery:
    def write_segment(self, path, reports):
        with SegmentWriter(path) as writer:
            for block_id, report in enumerate(reports):
                writer.append(encode_block_record(0, block_id, report))
        return path.read_bytes()

    def test_torn_tail_on_packed_segment(self, tmp_path):
        path = tmp_path / "seg-0.seg"
        reports = [
            packed_report([frozenset({1, 2, 3})]),
            packed_report([frozenset({2, 4})]),
            packed_report([frozenset({5, 6}), frozenset({7})]),
        ]
        data = self.write_segment(path, reports)
        # Tear the final record: keep everything but its last 7 bytes.
        path.write_bytes(data[:-7])
        payloads, valid = recover_segment(path)
        assert len(payloads) == 2
        for block_id, payload in enumerate(payloads):
            level, got_id, back = decode_block_record(payload)
            assert (level, got_id) == (0, block_id)
            assert back.cliques.to_list() == reports[block_id].cliques.to_list()
        assert valid < len(data)

    def test_intact_packed_segment_recovers_fully(self, tmp_path):
        path = tmp_path / "seg-1.seg"
        reports = [packed_report([frozenset({i, i + 1})]) for i in range(4)]
        self.write_segment(path, reports)
        payloads, _ = recover_segment(path)
        assert len(payloads) == 4


# ---------------------------------------------------------------------------
# Plane parity and legacy-spill back-compat (the differential gate)
# ---------------------------------------------------------------------------
M = 16


@pytest.fixture(scope="module")
def graph():
    return social_network(70, attachment=3, planted_cliques=(6,), seed=11)


class TestPlaneParity:
    """Packed and frozenset planes: byte-identical clique sets."""

    @pytest.mark.parametrize("mode", DRIVER_MODES)
    def test_driver_modes_agree_across_planes(self, mode, graph, monkeypatch):
        monkeypatch.delenv(RESULT_PLANE_ENV, raising=False)
        packed = run_driver(mode, graph, M)
        monkeypatch.setenv(RESULT_PLANE_ENV, "frozenset")
        legacy = run_driver(mode, graph, M)
        assert packed == legacy

    @pytest.mark.parametrize("combo", ALL_COMBOS, ids=lambda c: c.name)
    def test_combos_agree_across_planes(self, combo, graph, monkeypatch):
        monkeypatch.delenv(RESULT_PLANE_ENV, raising=False)
        packed = run_driver("serial", graph, M, combo=combo)
        monkeypatch.setenv(RESULT_PLANE_ENV, "frozenset")
        legacy = run_driver("serial", graph, M, combo=combo)
        assert packed == legacy

    def test_provenance_agrees_across_planes(self, graph, monkeypatch):
        monkeypatch.delenv(RESULT_PLANE_ENV, raising=False)
        packed = find_max_cliques(graph, M)
        monkeypatch.setenv(RESULT_PLANE_ENV, "frozenset")
        legacy = find_max_cliques(graph, M)
        assert packed.provenance == legacy.provenance
        packed_summary, legacy_summary = packed.summary(), legacy.summary()
        for key in ("num_cliques", "max_clique_size", "feasible_cliques", "hub_only_cliques"):
            assert packed_summary[key] == legacy_summary[key]
        assert packed.largest(5) == legacy.largest(5)
        assert packed.hub_share_of_largest(5) == legacy.hub_share_of_largest(5)


class TestLegacySpillBackCompat:
    def test_legacy_spill_dir_resumes_under_packed_plane(
        self, graph, tmp_path, monkeypatch
    ):
        # A complete durable run on the legacy plane writes pickled
        # records ...
        monkeypatch.setenv(RESULT_PLANE_ENV, "frozenset")
        legacy = find_max_cliques(graph, M, spill_dir=tmp_path)
        assert legacy.run_info["blocks_recorded"] > 0
        # ... which a packed-plane build replays without re-analysing.
        monkeypatch.delenv(RESULT_PLANE_ENV)
        resumed = find_max_cliques(graph, M, spill_dir=tmp_path, resume=True)
        assert resumed.run_info["blocks_recorded"] == 0
        assert resumed.run_info["blocks_replayed"] > 0
        assert canonical_cliques(resumed.cliques) == canonical_cliques(
            legacy.cliques
        )

    def test_packed_spill_dir_resumes_under_packed_plane(
        self, graph, tmp_path, monkeypatch
    ):
        monkeypatch.delenv(RESULT_PLANE_ENV, raising=False)
        fresh = find_max_cliques(graph, M, spill_dir=tmp_path)
        resumed = find_max_cliques(graph, M, spill_dir=tmp_path, resume=True)
        assert resumed.run_info["blocks_replayed"] > 0
        assert canonical_cliques(resumed.cliques) == canonical_cliques(
            fresh.cliques
        )

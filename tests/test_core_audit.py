"""Unit tests for the result auditor and result summaries."""

from __future__ import annotations

import json

import pytest

from repro.core.audit import audit_result
from repro.core.driver import find_max_cliques
from repro.core.result import CliqueResult
from repro.graph.generators import complete_graph, social_network


@pytest.fixture(scope="module")
def run():
    graph = social_network(100, attachment=3, planted_cliques=(8,), seed=6)
    return graph, find_max_cliques(graph, 20)


class TestAuditClean:
    def test_driver_output_passes(self, run):
        graph, result = run
        report = audit_result(graph, result)
        assert report.ok, report.problems
        assert report.checked_cliques == result.num_cliques
        assert report.completeness_checked

    def test_skip_completeness(self, run):
        graph, result = run
        report = audit_result(graph, result, check_completeness=False)
        assert report.ok
        assert not report.completeness_checked


class TestAuditDetectsTampering:
    def _tampered(self, result: CliqueResult, cliques, provenance=None):
        return CliqueResult(
            cliques=cliques,
            provenance=provenance
            if provenance is not None
            else {c: result.provenance.get(c, 0) for c in cliques},
            levels=result.levels,
            m=result.m,
        )

    def test_duplicate_detected(self, run):
        graph, result = run
        tampered = self._tampered(result, result.cliques + [result.cliques[0]])
        report = audit_result(graph, tampered, check_completeness=False)
        assert any("duplicate" in p for p in report.problems)

    def test_missing_detected(self, run):
        graph, result = run
        tampered = self._tampered(result, result.cliques[:-1])
        report = audit_result(graph, tampered)
        assert any("missing" in p for p in report.problems)

    def test_non_maximal_detected(self, run):
        graph, result = run
        big = max(result.cliques, key=len)
        shrunk = frozenset(list(big)[:-1])
        tampered = self._tampered(result, result.cliques + [shrunk])
        report = audit_result(graph, tampered, check_completeness=False)
        assert any("not maximal" in p for p in report.problems)

    def test_non_clique_detected(self, run):
        graph, result = run
        nodes = list(graph.nodes())
        fake = None
        for i, u in enumerate(nodes):
            for v in nodes[i + 1 :]:
                if not graph.has_edge(u, v):
                    fake = frozenset({u, v})
                    break
            if fake:
                break
        assert fake is not None
        tampered = self._tampered(result, result.cliques + [fake])
        report = audit_result(graph, tampered, check_completeness=False)
        assert any("not a clique" in p for p in report.problems)

    def test_bad_provenance_detected(self, run):
        graph, result = run
        hub_clique = result.hub_cliques()
        feas_clique = result.feasible_cliques()
        if not hub_clique or not feas_clique:
            pytest.skip("run has no hub/feasible split to corrupt")
        provenance = dict(result.provenance)
        provenance[feas_clique[0]] = 1  # claim a feasible clique is hub-only
        tampered = self._tampered(result, result.cliques, provenance)
        report = audit_result(graph, tampered, check_completeness=False)
        assert any("feasible node" in p for p in report.problems)

    def test_provenance_key_mismatch(self, run):
        graph, result = run
        provenance = dict(result.provenance)
        provenance.pop(next(iter(provenance)))
        tampered = self._tampered(result, result.cliques, provenance)
        report = audit_result(graph, tampered, check_completeness=False)
        assert any("provenance keys" in p for p in report.problems)


class TestSummary:
    def test_json_serialisable(self, run):
        _graph, result = run
        payload = json.dumps(result.summary())
        restored = json.loads(payload)
        assert restored["num_cliques"] == result.num_cliques
        assert restored["m"] == result.m

    def test_fields_consistent(self, run):
        _graph, result = run
        summary = result.summary()
        assert summary["feasible_cliques"] + summary["hub_only_cliques"] == (
            summary["num_cliques"]
        )
        assert len(summary["levels"]) == result.recursion_depth

    def test_trivial_run(self):
        graph = complete_graph(3)
        result = find_max_cliques(graph, 5)
        summary = result.summary()
        assert summary["num_cliques"] == 1
        assert summary["max_clique_size"] == 3

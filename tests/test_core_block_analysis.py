"""Unit tests for BLOCK-ANALYSIS (per-block anchored enumeration)."""

from __future__ import annotations

import pytest

from conftest import nx_cliques
from repro.core.block_analysis import analyze_block, analyze_blocks
from repro.core.blocks import build_blocks
from repro.core.feasibility import cut
from repro.graph.adjacency import Graph
from repro.graph.generators import erdos_renyi, social_network
from repro.mce.registry import Combo
from repro.mce.verify import is_maximal_clique


def blocks_for(graph: Graph, m: int):
    feasible, _hubs = cut(graph, m)
    return build_blocks(graph, feasible, m)


class TestSingleBlock:
    def test_cliques_touch_kernel_and_avoid_visited(self):
        g = erdos_renyi(25, 0.3, seed=5)
        for block in blocks_for(g, 12):
            report = analyze_block(block)
            kernel = set(block.kernel)
            for clique in report.cliques:
                assert clique & kernel, "clique without kernel node"
                assert not clique & block.visited, "clique with visited node"

    def test_cliques_maximal_in_input_graph(self):
        g = erdos_renyi(25, 0.3, seed=6)
        for block in blocks_for(g, 12):
            report = analyze_block(block)
            for clique in report.cliques:
                assert is_maximal_clique(g, clique)

    def test_report_metadata(self):
        g = erdos_renyi(20, 0.3, seed=7)
        block = blocks_for(g, 10)[0]
        report = analyze_block(block)
        assert report.seconds > 0.0
        assert report.kernel_nodes == len(block.kernel)
        assert report.features.num_nodes == block.graph.num_nodes

    def test_forced_combo_used(self):
        g = erdos_renyi(20, 0.3, seed=8)
        block = blocks_for(g, 10)[0]
        combo = Combo("bkpivot", "matrix")
        report = analyze_block(block, combo=combo)
        assert report.combo == combo

    def test_forced_combo_same_output_as_tree_choice(self):
        g = erdos_renyi(22, 0.35, seed=9)
        for block in blocks_for(g, 11):
            by_tree = set(analyze_block(block).cliques)
            by_force = set(
                analyze_block(block, combo=Combo("eppstein", "lists")).cliques
            )
            assert by_tree == by_force


class TestAcrossBlocks:
    def test_union_has_no_duplicates(self):
        g = social_network(100, attachment=3, planted_cliques=(7,), seed=1)
        blocks = blocks_for(g, 20)
        cliques, _reports = analyze_blocks(blocks)
        assert len(cliques) == len(set(cliques))

    def test_union_equals_feasible_touching_cliques(self):
        g = social_network(100, attachment=3, planted_cliques=(7,), seed=1)
        m = 20
        feasible, _hubs = cut(g, m)
        feasible_set = set(feasible)
        blocks = build_blocks(g, feasible, m)
        cliques, _reports = analyze_blocks(blocks)
        expected = {c for c in nx_cliques(g) if c & feasible_set}
        assert set(cliques) == expected

    def test_one_report_per_block(self):
        g = erdos_renyi(30, 0.2, seed=3)
        blocks = blocks_for(g, 8)
        _cliques, reports = analyze_blocks(blocks)
        assert len(reports) == len(blocks)

    def test_empty_block_list(self):
        cliques, reports = analyze_blocks([])
        assert cliques == []
        assert reports == []


class TestFigure1:
    def test_shared_clique_reported_once(self, figure1):
        # {H, F, D} occurs in two blocks of Figure 2 but the visited
        # mechanism must keep exactly one copy.
        blocks = blocks_for(figure1, 5)
        cliques, _ = analyze_blocks(blocks)
        assert cliques.count(frozenset({"H", "F", "D"})) == 1

    def test_feasible_cliques_complete(self, figure1):
        from conftest import FIGURE1_CLIQUES

        blocks = blocks_for(figure1, 5)
        cliques, _ = analyze_blocks(blocks)
        expected = {c for c in FIGURE1_CLIQUES if c - {"D", "S", "E"}}
        assert set(cliques) == expected

"""Unit tests for the second-level decomposition (BLOCKS)."""

from __future__ import annotations

import pytest

from repro.core.blocks import Block, build_blocks, validate_blocks
from repro.core.feasibility import cut
from repro.errors import DecompositionError
from repro.graph.adjacency import Graph
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi,
    social_network,
    star_graph,
)


def decompose(graph: Graph, m: int):
    feasible, _hubs = cut(graph, m)
    blocks = build_blocks(graph, feasible, m)
    return feasible, blocks


class TestInvariants:
    @pytest.mark.parametrize("m", [3, 5, 8, 15])
    def test_random_graphs_validate(self, m):
        for seed in range(4):
            g = erdos_renyi(30, 0.2, seed=seed)
            feasible, blocks = decompose(g, m)
            validate_blocks(g, blocks, feasible, m)

    def test_social_network_validates(self):
        g = social_network(150, attachment=3, planted_cliques=(8,), seed=2)
        for m in (10, 25, 60):
            feasible, blocks = decompose(g, m)
            validate_blocks(g, blocks, feasible, m)

    def test_kernels_partition_feasible(self):
        g = erdos_renyi(40, 0.15, seed=7)
        feasible, blocks = decompose(g, 10)
        all_kernels = [node for block in blocks for node in block.kernel]
        assert sorted(all_kernels, key=str) == sorted(feasible, key=str)
        assert len(all_kernels) == len(set(all_kernels))

    def test_block_size_bounded(self):
        g = erdos_renyi(40, 0.3, seed=8)
        _, blocks = decompose(g, 9)
        assert all(block.size <= 9 for block in blocks)

    def test_kernel_neighborhood_inside_block(self):
        g = social_network(80, attachment=3, seed=4)
        _, blocks = decompose(g, 15)
        for block in blocks:
            members = set(block.graph.nodes())
            for kernel in block.kernel:
                assert g.neighbors(kernel) <= members


class TestFigure1:
    def test_hubs_never_kernels(self, figure1):
        feasible, blocks = decompose(figure1, 5)
        kernels = {node for block in blocks for node in block.kernel}
        assert not kernels & {"D", "S", "E"}
        # But hub neighbourhoods are distributed among the blocks.
        appearing = {node for block in blocks for node in block.graph.nodes()}
        assert {"D", "S", "E"} <= appearing

    def test_every_feasible_clique_in_some_block(self, figure1):
        from conftest import FIGURE1_CLIQUES

        _, blocks = decompose(figure1, 5)
        feasible_cliques = [
            c for c in FIGURE1_CLIQUES if c - {"D", "S", "E"}
        ]
        for clique in feasible_cliques:
            assert any(
                clique <= set(block.graph.nodes()) for block in blocks
            ), clique


class TestBlockDataclass:
    def test_node_kind(self):
        g = Graph(edges=[(0, 1), (1, 2)])
        feasible, blocks = decompose(g, 3)
        block = blocks[0]
        assert block.node_kind(block.kernel[0]) == "kernel"

    def test_node_kind_missing(self):
        _, blocks = decompose(cycle_graph(4), 4)
        with pytest.raises(KeyError):
            blocks[0].node_kind("nope")

    def test_repr(self):
        _, blocks = decompose(cycle_graph(4), 4)
        assert "kernel=" in repr(blocks[0])


class TestEdgeCases:
    def test_no_feasible_nodes(self):
        g = complete_graph(5)
        blocks = build_blocks(g, [], 2)
        assert blocks == []

    def test_isolated_nodes(self):
        g = Graph(nodes=[1, 2, 3])
        feasible, blocks = decompose(g, 2)
        validate_blocks(g, blocks, feasible, 2)
        # All three isolated nodes fit in one block of size <= 2? No:
        # each isolated node's closed neighbourhood is itself, so greedy
        # growth packs two per block.
        assert sum(len(b.kernel) for b in blocks) == 3

    def test_star_with_small_m(self):
        g = star_graph(6)  # hub degree 6
        feasible, blocks = decompose(g, 3)
        validate_blocks(g, blocks, feasible, 3)
        # Leaves are feasible; hub is not (degree 6 >= 3).
        kernels = {n for b in blocks for n in b.kernel}
        assert 0 not in kernels

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            build_blocks(Graph(), [], 0)

    def test_invalid_min_adjacency(self):
        with pytest.raises(ValueError):
            build_blocks(Graph(), [], 5, min_adjacency=0)

    def test_wrong_feasible_set_detected(self):
        # Passing a hub as "feasible" must be caught, not silently built.
        g = star_graph(6)
        with pytest.raises(DecompositionError):
            build_blocks(g, [0], 3)

    def test_isolated_growth_stops_at_threshold(self):
        # With min_adjacency=2, a chain cannot grow past the seed's
        # immediate pair, producing more, smaller blocks.
        g = cycle_graph(12)
        feasible, _ = cut(g, 12)
        loose = build_blocks(g, feasible, 12, min_adjacency=1)
        strict = build_blocks(g, feasible, 12, min_adjacency=2)
        assert len(strict) >= len(loose)


class TestValidator:
    def test_detects_oversized_block(self):
        g = cycle_graph(5)
        feasible, blocks = decompose(g, 5)
        with pytest.raises(DecompositionError, match="exceed"):
            validate_blocks(g, blocks, feasible, 2)

    def test_detects_missing_kernel(self):
        g = cycle_graph(6)
        feasible, blocks = decompose(g, 6)
        with pytest.raises(DecompositionError, match="partition"):
            validate_blocks(g, blocks, feasible + ["ghost"], 6)

    def test_detects_duplicate_kernels(self):
        g = Graph(edges=[(0, 1)])
        block = Block(
            kernel=(0, 0),
            border=frozenset({1}),
            visited=frozenset(),
            graph=g.copy(),
        )
        with pytest.raises(DecompositionError, match="duplicate"):
            validate_blocks(g, [block], [0], 5)

"""Unit tests for FIND-MAX-CLIQUES (the end-to-end driver)."""

from __future__ import annotations

import warnings

import pytest

from conftest import FIGURE1_CLIQUES, nx_cliques
from repro.core.driver import decompose_only, find_max_cliques
from repro.errors import ConvergenceError
from repro.graph.adjacency import Graph
from repro.graph.cores import degeneracy
from repro.graph.generators import (
    complete_graph,
    erdos_renyi,
    h_n,
    social_network,
    star_graph,
)
from repro.mce.registry import Combo


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("m", [6, 10, 20, 50])
    def test_matches_networkx_random(self, seed, m):
        g = erdos_renyi(30, 0.25, seed=seed)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            result = find_max_cliques(g, m)
        assert len(result.cliques) == len(set(result.cliques))
        assert set(result.cliques) == nx_cliques(g)

    def test_matches_networkx_social(self):
        g = social_network(150, attachment=3, planted_cliques=(9,), seed=2)
        result = find_max_cliques(g, 25)
        assert set(result.cliques) == nx_cliques(g)

    def test_figure1_complete_output(self, figure1):
        result = find_max_cliques(figure1, 5)
        assert set(result.cliques) == FIGURE1_CLIQUES

    def test_figure1_hub_clique_provenance(self, figure1):
        # {D, S, E} is found in the recursion on the hub triangle.
        result = find_max_cliques(figure1, 5)
        assert result.provenance[frozenset({"D", "S", "E"})] == 1
        assert result.provenance[frozenset({"A", "J", "H"})] == 0
        assert result.hub_cliques() == [frozenset({"D", "S", "E"})]

    def test_empty_graph(self):
        result = find_max_cliques(Graph(), 5)
        assert result.cliques == []
        assert result.recursion_depth == 0

    def test_isolated_nodes(self):
        g = Graph(nodes=[1, 2])
        result = find_max_cliques(g, 3)
        assert set(result.cliques) == {frozenset({1}), frozenset({2})}

    def test_star_small_m(self):
        g = star_graph(8)
        result = find_max_cliques(g, 4)
        assert set(result.cliques) == nx_cliques(g)


class TestRecursion:
    def test_depth_grows_as_m_shrinks(self):
        g = social_network(200, attachment=4, planted_cliques=(10,), seed=5)
        d = g.max_degree()
        depths = []
        for ratio in (0.9, 0.3):
            result = find_max_cliques(g, max(int(ratio * d), degeneracy(g) + 1))
            depths.append(result.recursion_depth)
        assert depths[1] >= depths[0]

    def test_level_stats_shrinking(self):
        g = social_network(200, attachment=4, planted_cliques=(10,), seed=5)
        result = find_max_cliques(g, degeneracy(g) + 10)
        sizes = [level.num_nodes for level in result.levels]
        assert sizes == sorted(sizes, reverse=True)
        assert all(s1 > s2 for s1, s2 in zip(sizes, sizes[1:]))

    def test_level_zero_counts(self):
        g = social_network(120, attachment=3, seed=6)
        result = find_max_cliques(g, 20)
        level0 = result.levels[0]
        assert level0.num_nodes == g.num_nodes
        assert level0.num_feasible + level0.num_hubs == g.num_nodes


class TestConvergenceGuard:
    def test_raise_mode(self):
        with pytest.raises(ConvergenceError) as excinfo:
            find_max_cliques(complete_graph(6), 3, fallback="raise")
        assert excinfo.value.core_size == 6

    def test_exact_fallback_warns_and_is_correct(self):
        g = complete_graph(6)
        with pytest.warns(RuntimeWarning, match="falling back"):
            result = find_max_cliques(g, 3)
        assert result.fallback_used
        assert set(result.cliques) == {frozenset(range(6))}

    def test_fallback_at_deeper_level(self):
        # Feasible at level 0, but the hub core is too dense for m.
        g = complete_graph(8)
        g.add_edge(0, "pendant")
        with pytest.warns(RuntimeWarning):
            result = find_max_cliques(g, 6)
        assert result.fallback_used
        assert set(result.cliques) == nx_cliques(g)

    def test_h_n_converges_with_m_above_degeneracy(self):
        m_construction = 3
        g = h_n(25, m_construction)
        result = find_max_cliques(g, m_construction + 2, fallback="raise")
        assert set(result.cliques) == nx_cliques(g)
        # The pathological structure forces many recursion rounds.
        assert result.recursion_depth > 5

    def test_unknown_fallback(self):
        with pytest.raises(ValueError):
            find_max_cliques(Graph(), 3, fallback="retry")

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            find_max_cliques(Graph(), 0)


class TestOptions:
    def test_forced_combo(self):
        g = erdos_renyi(25, 0.3, seed=1)
        combo = Combo("tomita", "matrix")
        result = find_max_cliques(g, 10, combo=combo)
        assert set(result.block_combos) == {combo.name}
        assert set(result.cliques) == nx_cliques(g)

    def test_collect_reports(self):
        g = erdos_renyi(25, 0.3, seed=2)
        result = find_max_cliques(g, 10, collect_reports=True)
        assert len(result.block_reports) == result.recursion_depth
        for level, reports in zip(result.levels, result.block_reports):
            assert len(reports) == level.num_blocks

    def test_reports_not_collected_by_default(self):
        g = erdos_renyi(25, 0.3, seed=2)
        assert find_max_cliques(g, 10).block_reports == []

    def test_min_adjacency_changes_blocks_not_output(self):
        g = social_network(100, attachment=3, seed=8)
        loose = find_max_cliques(g, 20, min_adjacency=1)
        strict = find_max_cliques(g, 20, min_adjacency=3)
        assert set(loose.cliques) == set(strict.cliques)


class TestResultAccessors:
    def test_sizes(self):
        g = social_network(100, attachment=3, planted_cliques=(8,), seed=9)
        result = find_max_cliques(g, 20)
        assert result.max_clique_size() >= 8
        assert 0 < result.average_clique_size() <= result.max_clique_size()

    def test_largest_k(self):
        g = social_network(100, attachment=3, planted_cliques=(8,), seed=9)
        result = find_max_cliques(g, 20)
        top = result.largest(5)
        assert len(top) == 5
        assert len(top[0]) >= len(top[-1])

    def test_largest_negative(self):
        result = find_max_cliques(Graph(), 3)
        with pytest.raises(ValueError):
            result.largest(-1)

    def test_hub_share_bounds(self):
        g = social_network(100, attachment=4, planted_cliques=(8,), seed=10)
        result = find_max_cliques(g, 15)
        assert 0.0 <= result.hub_share_of_largest(50) <= 1.0

    def test_timing_totals(self):
        g = erdos_renyi(25, 0.3, seed=3)
        result = find_max_cliques(g, 10)
        assert result.total_decomposition_seconds() > 0.0
        assert result.total_analysis_seconds() > 0.0

    def test_repr(self):
        result = find_max_cliques(complete_graph(4), 5)
        assert "cliques=1" in repr(result)


class TestDecomposeOnly:
    def test_stats_match_driver(self):
        g = social_network(120, attachment=3, seed=11)
        stats, iterations = decompose_only(g, 20)
        full = find_max_cliques(g, 20)
        assert iterations == full.recursion_depth
        assert [s.num_blocks for s in stats] == [
            level.num_blocks for level in full.levels
        ]

    def test_nonconvergent_stops_quietly_by_default(self):
        stats, iterations = decompose_only(complete_graph(6), 3)
        assert iterations == 0

    def test_nonconvergent_raise(self):
        with pytest.raises(ConvergenceError):
            decompose_only(complete_graph(6), 3, fallback="raise")

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            decompose_only(Graph(), 0)
        with pytest.raises(ValueError):
            decompose_only(Graph(), 3, fallback="nope")

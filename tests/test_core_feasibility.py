"""Unit tests for the feasibility predicate and CUT."""

from __future__ import annotations

import pytest

from repro.core.feasibility import cut, is_feasible, is_feasible_node
from repro.errors import NodeNotFoundError
from repro.graph.adjacency import Graph
from repro.graph.generators import complete_graph, star_graph


class TestIsFeasible:
    def test_single_node_fits(self):
        g = star_graph(3)  # hub 0 has degree 3
        assert is_feasible([0], g, 4)
        assert not is_feasible([0], g, 3)

    def test_set_union_counted_once(self):
        # Nodes 1 and 2 share hub 0: closed neighbourhood is {0, 1, 2}.
        g = star_graph(3)
        assert is_feasible([1, 2], g, 3)
        assert not is_feasible([1, 2, 3], g, 3)

    def test_empty_set(self):
        assert is_feasible([], Graph(), 1)

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            is_feasible([], Graph(), 0)

    def test_missing_node(self):
        with pytest.raises(NodeNotFoundError):
            is_feasible([9], Graph(), 5)

    def test_early_exit_consistent(self):
        g = complete_graph(10)
        assert not is_feasible([0], g, 5)
        assert is_feasible([0], g, 10)

    def test_precomputed_degrees_fast_path(self):
        g = star_graph(3)
        degrees = {node: g.degree(node) for node in g.nodes()}
        for m in range(1, 6):
            for node in g.nodes():
                assert is_feasible([node], g, m, degrees=degrees) == is_feasible(
                    [node], g, m
                )

    def test_degrees_lookup_is_authoritative_when_present(self):
        # The O(1) path must trust the caller's lookup, not re-query the
        # graph: a deliberately wrong entry flips the answer.
        g = star_graph(3)  # hub 0 has degree 3
        assert is_feasible([0], g, 2, degrees={0: 1})
        assert not is_feasible([0], g, 4, degrees={0: 9})

    def test_missing_degrees_entry_falls_back_to_graph(self):
        g = star_graph(3)
        assert is_feasible([0], g, 4, degrees={})
        assert not is_feasible([0], g, 3, degrees={})

    def test_degrees_ignored_for_multi_node_queries(self):
        g = star_graph(3)
        # Bogus lookup entries must not affect the set-union path.
        bogus = {node: 0 for node in g.nodes()}
        assert is_feasible([1, 2], g, 3, degrees=bogus)
        assert not is_feasible([1, 2, 3], g, 3, degrees=bogus)


class TestIsFeasibleNode:
    def test_matches_degree_rule(self):
        g = star_graph(4)
        # degree(0) = 4: feasible iff m >= 5.
        assert is_feasible_node(0, g, 5)
        assert not is_feasible_node(0, g, 4)

    def test_equivalent_to_set_form(self):
        g = complete_graph(6)
        for m in range(1, 9):
            for node in g.nodes():
                assert is_feasible_node(node, g, m) == is_feasible([node], g, m)

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            is_feasible_node(0, star_graph(1), 0)


class TestCut:
    def test_figure1(self, figure1):
        # Paper, Section 2: with m = 5, hubs are exactly D, S and E.
        feasible, hubs = cut(figure1, 5)
        assert set(hubs) == {"D", "S", "E"}
        assert set(feasible) == set(figure1.nodes()) - {"D", "S", "E"}

    def test_partition(self):
        g = star_graph(6)
        feasible, hubs = cut(g, 4)
        assert set(feasible) | set(hubs) == set(g.nodes())
        assert not set(feasible) & set(hubs)

    def test_all_feasible_when_m_large(self):
        g = complete_graph(5)
        feasible, hubs = cut(g, 5)
        assert hubs == []
        assert len(feasible) == 5

    def test_all_hubs_when_m_small(self):
        g = complete_graph(5)
        feasible, hubs = cut(g, 2)
        assert feasible == []
        assert len(hubs) == 5

    def test_insertion_order_preserved(self):
        g = Graph(edges=[(3, 1), (1, 2)])
        feasible, _hubs = cut(g, 10)
        assert feasible == [3, 1, 2]

    def test_empty_graph(self):
        assert cut(Graph(), 3) == ([], [])

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            cut(Graph(), 0)

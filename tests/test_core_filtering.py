"""Unit tests for the Lemma 1 containment filter."""

from __future__ import annotations

from repro.core.filtering import filter_contained, merge_level


def fs(*nodes):
    return frozenset(nodes)


class TestFilterContained:
    def test_contained_dropped(self):
        assert filter_contained([fs(1, 2)], [fs(1, 2, 3)]) == []

    def test_equal_dropped(self):
        assert filter_contained([fs(1, 2)], [fs(1, 2)]) == []

    def test_not_contained_kept(self):
        assert filter_contained([fs(1, 4)], [fs(1, 2, 3)]) == [fs(1, 4)]

    def test_partial_overlap_kept(self):
        # Members split across two reference cliques, but no single
        # reference clique contains the candidate.
        candidates = [fs(1, 2)]
        reference = [fs(1, 3), fs(2, 3)]
        assert filter_contained(candidates, reference) == [fs(1, 2)]

    def test_empty_reference_keeps_all(self):
        assert filter_contained([fs(1), fs(2)], []) == [fs(1), fs(2)]

    def test_empty_candidates(self):
        assert filter_contained([], [fs(1)]) == []

    def test_empty_candidate_dropped_when_reference_exists(self):
        assert filter_contained([fs()], [fs(1)]) == []

    def test_empty_candidate_kept_without_reference(self):
        assert filter_contained([fs()], []) == [fs()]

    def test_order_preserved(self):
        candidates = [fs(5), fs(4), fs(9)]
        assert filter_contained(candidates, [fs(4, 0)]) == [fs(5), fs(9)]

    def test_member_not_in_any_reference(self):
        assert filter_contained([fs(1, 99)], [fs(1, 2), fs(1, 3)]) == [fs(1, 99)]

    def test_many_references(self):
        reference = [fs(i, i + 1, i + 2) for i in range(50)]
        candidates = [fs(10, 11), fs(10, 13)]
        assert filter_contained(candidates, reference) == [fs(10, 13)]


class TestMergeLevel:
    def test_feasible_first(self):
        merged = merge_level([fs(1, 2)], [fs(3, 4)])
        assert merged == [fs(1, 2), fs(3, 4)]

    def test_hub_clique_filtered(self):
        merged = merge_level([fs(1, 2, 3)], [fs(2, 3)])
        assert merged == [fs(1, 2, 3)]

    def test_lemma1_example(self):
        # Figure 1's instantiation: Cf covers {A,J,H}, {H,F,D}, ... and
        # Ch = {{D,S,E}} from the hub triangle; nothing filters out.
        cf = [fs("A", "J", "H"), fs("H", "F", "D")]
        ch = [fs("D", "S", "E")]
        assert merge_level(cf, ch) == cf + ch

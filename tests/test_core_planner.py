"""Unit tests for the block-size planner."""

from __future__ import annotations

import pytest

from repro.core.driver import find_max_cliques
from repro.core.planner import recommend_block_size
from repro.distributed.cluster import ClusterSpec
from repro.errors import ConvergenceError
from repro.graph.adjacency import Graph
from repro.graph.cores import degeneracy
from repro.graph.datasets import load_dataset
from repro.graph.generators import complete_graph, social_network


class TestRecommendation:
    def test_dataset_gets_efficiency_target(self):
        graph = load_dataset("google+")
        plan = recommend_block_size(graph)
        assert plan.m == max(2, graph.max_degree() // 2)
        assert "efficiency target" in plan.rationale
        assert plan.ratio == pytest.approx(0.5, abs=0.01)

    def test_plan_satisfies_theorem1(self):
        graph = social_network(200, attachment=3, planted_cliques=(9,), seed=3)
        plan = recommend_block_size(graph)
        assert plan.m > degeneracy(graph)
        # And the driver accepts it without fallback.
        result = find_max_cliques(graph, plan.m, fallback="raise")
        assert not result.fallback_used

    def test_dense_graph_raised_to_lower_bound(self):
        # K30: degeneracy 29, max degree 29 -> 0.5 target (14) is below
        # the completeness bound and must be raised.
        graph = complete_graph(30)
        plan = recommend_block_size(graph)
        assert plan.m == 30
        assert "degeneracy" in plan.rationale

    def test_memory_cap_binds_with_tiny_budget(self):
        graph = load_dataset("google+")
        tiny = ClusterSpec(memory_bytes_per_machine=30_000_000)
        plan = recommend_block_size(
            graph, cluster=tiny, backend="matrix", memory_fraction=0.0001
        )
        assert plan.m == plan.memory_upper_bound
        assert "memory budget" in plan.rationale

    def test_impossible_budget_raises(self):
        graph = complete_graph(40)  # degeneracy 39
        tiny = ClusterSpec(memory_bytes_per_machine=1024)
        with pytest.raises(ConvergenceError):
            recommend_block_size(
                graph, cluster=tiny, backend="matrix", memory_fraction=0.5
            )

    def test_bounds_recorded(self):
        graph = load_dataset("twitter1")
        plan = recommend_block_size(graph)
        assert plan.completeness_lower_bound == degeneracy(graph) + 1
        assert plan.memory_upper_bound >= plan.m
        assert plan.target == max(2, graph.max_degree() // 2)


class TestValidation:
    def test_empty_graph(self):
        with pytest.raises(ValueError):
            recommend_block_size(Graph())

    def test_bad_ratio(self):
        with pytest.raises(ValueError):
            recommend_block_size(complete_graph(3), ratio=0.0)

    def test_bad_memory_fraction(self):
        with pytest.raises(ValueError):
            recommend_block_size(complete_graph(3), memory_fraction=2.0)

    def test_ratio_one_allowed(self):
        graph = social_network(100, attachment=3, seed=4)
        plan = recommend_block_size(graph, ratio=1.0)
        assert plan.m >= graph.max_degree() * 0.9

"""Unit tests for the block-size planner."""

from __future__ import annotations

import pytest

from repro.core.driver import find_max_cliques
from repro.core.planner import recommend_block_size
from repro.distributed.cluster import ClusterSpec
from repro.errors import ConvergenceError
from repro.graph.adjacency import Graph
from repro.graph.cores import degeneracy
from repro.graph.datasets import load_dataset
from repro.graph.generators import complete_graph, social_network


class TestRecommendation:
    def test_dataset_gets_efficiency_target(self):
        graph = load_dataset("google+")
        plan = recommend_block_size(graph)
        assert plan.m == max(2, graph.max_degree() // 2)
        assert "efficiency target" in plan.rationale
        assert plan.ratio == pytest.approx(0.5, abs=0.01)

    def test_plan_satisfies_theorem1(self):
        graph = social_network(200, attachment=3, planted_cliques=(9,), seed=3)
        plan = recommend_block_size(graph)
        assert plan.m > degeneracy(graph)
        # And the driver accepts it without fallback.
        result = find_max_cliques(graph, plan.m, fallback="raise")
        assert not result.fallback_used

    def test_dense_graph_raised_to_lower_bound(self):
        # K30: degeneracy 29, max degree 29 -> 0.5 target (14) is below
        # the completeness bound and must be raised.
        graph = complete_graph(30)
        plan = recommend_block_size(graph)
        assert plan.m == 30
        assert "degeneracy" in plan.rationale

    def test_memory_cap_binds_with_tiny_budget(self):
        graph = load_dataset("google+")
        tiny = ClusterSpec(memory_bytes_per_machine=30_000_000)
        plan = recommend_block_size(
            graph, cluster=tiny, backend="matrix", memory_fraction=0.0001
        )
        assert plan.m == plan.memory_upper_bound
        assert "memory budget" in plan.rationale

    def test_impossible_budget_raises(self):
        graph = complete_graph(40)  # degeneracy 39
        tiny = ClusterSpec(memory_bytes_per_machine=1024)
        with pytest.raises(ConvergenceError):
            recommend_block_size(
                graph, cluster=tiny, backend="matrix", memory_fraction=0.5
            )

    def test_bounds_recorded(self):
        graph = load_dataset("twitter1")
        plan = recommend_block_size(graph)
        assert plan.completeness_lower_bound == degeneracy(graph) + 1
        assert plan.memory_upper_bound >= plan.m
        assert plan.target == max(2, graph.max_degree() // 2)


class TestValidation:
    def test_empty_graph(self):
        with pytest.raises(ValueError):
            recommend_block_size(Graph())

    def test_bad_ratio(self):
        with pytest.raises(ValueError):
            recommend_block_size(complete_graph(3), ratio=0.0)

    def test_bad_memory_fraction(self):
        with pytest.raises(ValueError):
            recommend_block_size(complete_graph(3), memory_fraction=2.0)

    def test_ratio_one_allowed(self):
        graph = social_network(100, attachment=3, seed=4)
        plan = recommend_block_size(graph, ratio=1.0)
        assert plan.m >= graph.max_degree() * 0.9


class TestTreeAwarePlanning:
    """``tree=`` runs the selector on the network's own features."""

    def test_no_tree_means_no_selected_combo(self):
        plan = recommend_block_size(social_network(80, seed=1))
        assert plan.selected_combo == ""
        assert "selector" not in plan.rationale

    def test_paper_tree_selects_and_rebinds_backend(self):
        graph = social_network(80, seed=1)
        plan = recommend_block_size(graph, backend="matrix", tree="paper")
        assert plan.selected_combo.startswith("[")
        assert "selector picked" in plan.rationale
        # the memory bound follows the selected combo's backend, not
        # the --backend argument
        from repro.decision.paper_tree import paper_tree, select_combo
        from repro.mce.memory import max_block_nodes_for_memory
        from repro.core.planner import _whole_graph_features

        combo = select_combo(
            paper_tree(), _whole_graph_features(graph, degeneracy(graph))
        )
        assert plan.selected_combo == combo.name
        spec = ClusterSpec()
        assert plan.memory_upper_bound == max_block_nodes_for_memory(
            max(1, int(spec.memory_bytes_per_machine * 0.01)), combo.backend
        )

    def test_csr_and_dict_plans_agree(self):
        from repro.graph.csr import CSRGraph

        graph = social_network(80, seed=1)
        dict_plan = recommend_block_size(graph, tree="extended")
        csr_plan = recommend_block_size(CSRGraph(graph), tree="extended")
        assert csr_plan.selected_combo == dict_plan.selected_combo
        assert csr_plan.m == dict_plan.m

    def test_tree_object_accepted(self):
        from repro.decision.paper_tree import paper_tree

        plan = recommend_block_size(social_network(80, seed=1), tree=paper_tree())
        assert plan.selected_combo

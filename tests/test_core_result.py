"""Direct unit tests for the CliqueResult/LevelStats containers."""

from __future__ import annotations

import pytest

from repro.core.result import CliqueResult, LevelStats


def fs(*nodes):
    return frozenset(nodes)


def make_result(cliques_with_levels, m=10, levels=None):
    cliques = [c for c, _ in cliques_with_levels]
    provenance = {c: level for c, level in cliques_with_levels}
    return CliqueResult(
        cliques=cliques,
        provenance=provenance,
        levels=levels or [],
        m=m,
    )


class TestProvenanceSplits:
    def test_feasible_and_hub(self):
        result = make_result([(fs(1, 2), 0), (fs(3, 4), 1), (fs(5), 2)])
        assert result.feasible_cliques() == [fs(1, 2)]
        assert result.hub_cliques() == [fs(3, 4), fs(5)]

    def test_all_feasible(self):
        result = make_result([(fs(1), 0), (fs(2), 0)])
        assert result.hub_cliques() == []


class TestAggregates:
    def test_counts_and_sizes(self):
        result = make_result([(fs(1, 2, 3), 0), (fs(4, 5), 1)])
        assert result.num_cliques == 2
        assert result.max_clique_size() == 3
        assert result.average_clique_size() == pytest.approx(2.5)

    def test_empty(self):
        result = make_result([])
        assert result.num_cliques == 0
        assert result.max_clique_size() == 0
        assert result.average_clique_size() == 0.0
        assert result.average_size_by_provenance() == (0.0, 0.0)
        assert result.hub_share_of_largest(10) == 0.0

    def test_average_by_provenance(self):
        result = make_result([(fs(1, 2, 3, 4), 0), (fs(5, 6), 1)])
        feasible_avg, hub_avg = result.average_size_by_provenance()
        assert feasible_avg == 4.0
        assert hub_avg == 2.0


class TestLargest:
    def test_ordering_deterministic(self):
        result = make_result(
            [(fs(1, 2), 0), (fs(3, 4), 0), (fs(5, 6, 7), 1)]
        )
        top = result.largest(2)
        assert top[0] == fs(5, 6, 7)
        # Tie between the two pairs broken by sorted string members.
        assert top[1] == fs(1, 2)

    def test_k_larger_than_count(self):
        result = make_result([(fs(1), 0)])
        assert result.largest(100) == [fs(1)]

    def test_hub_share(self):
        result = make_result(
            [(fs(1, 2, 3), 1), (fs(4, 5, 6), 1), (fs(7, 8), 0), (fs(9), 0)]
        )
        assert result.hub_share_of_largest(2) == 1.0
        assert result.hub_share_of_largest(4) == pytest.approx(0.5)


class TestLevels:
    def test_timing_totals(self):
        levels = [
            LevelStats(
                level=0,
                num_nodes=10,
                num_edges=20,
                num_feasible=8,
                num_hubs=2,
                num_blocks=3,
                decomposition_seconds=0.5,
                analysis_seconds=1.0,
                cliques_found=7,
            ),
            LevelStats(
                level=1,
                num_nodes=2,
                num_edges=1,
                num_feasible=2,
                num_hubs=0,
                num_blocks=1,
                decomposition_seconds=0.25,
                analysis_seconds=0.5,
                cliques_found=1,
            ),
        ]
        result = make_result([(fs(1), 0)], levels=levels)
        assert result.recursion_depth == 2
        assert result.total_decomposition_seconds() == pytest.approx(0.75)
        assert result.total_analysis_seconds() == pytest.approx(1.5)

    def test_level_stats_frozen(self):
        stats = LevelStats(
            level=0,
            num_nodes=1,
            num_edges=0,
            num_feasible=1,
            num_hubs=0,
            num_blocks=1,
            decomposition_seconds=0.0,
            analysis_seconds=0.0,
            cliques_found=1,
        )
        with pytest.raises(AttributeError):
            stats.level = 1  # type: ignore[misc]


class TestSummary:
    def test_summary_of_synthetic(self):
        result = make_result([(fs(1, 2), 0), (fs(3), 1)])
        summary = result.summary()
        assert summary["num_cliques"] == 2
        assert summary["feasible_cliques"] == 1
        assert summary["hub_only_cliques"] == 1
        assert summary["levels"] == []

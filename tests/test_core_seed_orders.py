"""Unit tests for the pluggable block-seed selection strategies."""

from __future__ import annotations

import pytest

from conftest import nx_cliques
from repro.core.blocks import (
    SEED_ORDERS,
    build_blocks,
    decomposition_overlap,
    validate_blocks,
)
from repro.core.driver import find_max_cliques
from repro.core.feasibility import cut
from repro.graph.adjacency import Graph
from repro.graph.generators import erdos_renyi, social_network


class TestSeedOrders:
    @pytest.mark.parametrize("seed_order", SEED_ORDERS)
    def test_invariants_hold(self, seed_order):
        g = erdos_renyi(30, 0.2, seed=3)
        m = 10
        feasible, _ = cut(g, m)
        blocks = build_blocks(g, feasible, m, seed_order=seed_order)
        validate_blocks(g, blocks, feasible, m)

    def test_output_invariant_across_orders(self):
        g = social_network(120, attachment=3, planted_cliques=(7,), seed=4)
        reference = nx_cliques(g)
        for seed_order in SEED_ORDERS:
            feasible, _ = cut(g, 20)
            blocks = build_blocks(g, feasible, 20, seed_order=seed_order)
            from repro.core.block_analysis import analyze_blocks

            cliques, _ = analyze_blocks(blocks)
            feasible_set = set(feasible)
            expected = {c for c in reference if c & feasible_set}
            assert set(cliques) == expected, seed_order

    def test_min_degree_seeds_start_low(self):
        g = social_network(100, attachment=3, seed=5)
        m = 20
        feasible, _ = cut(g, m)
        blocks = build_blocks(g, feasible, m, seed_order="min_degree")
        first_seed = blocks[0].kernel[0]
        assert g.degree(first_seed) == min(g.degree(n) for n in feasible)

    def test_max_degree_seeds_start_high(self):
        g = social_network(100, attachment=3, seed=5)
        m = 20
        feasible, _ = cut(g, m)
        blocks = build_blocks(g, feasible, m, seed_order="max_degree")
        first_seed = blocks[0].kernel[0]
        assert g.degree(first_seed) == max(g.degree(n) for n in feasible)

    def test_unknown_order_rejected(self):
        with pytest.raises(ValueError, match="seed_order"):
            build_blocks(Graph(), [], 5, seed_order="random")

    def test_deterministic(self):
        g = erdos_renyi(30, 0.25, seed=7)
        feasible, _ = cut(g, 10)
        a = build_blocks(g, feasible, 10, seed_order="min_degree")
        b = build_blocks(g, feasible, 10, seed_order="min_degree")
        assert [x.kernel for x in a] == [x.kernel for x in b]


class TestOverlap:
    def test_empty(self):
        assert decomposition_overlap([]) == 0.0

    def test_disjoint_blocks_have_factor_one(self):
        g = Graph(nodes=[1, 2, 3, 4])
        feasible, _ = cut(g, 2)
        blocks = build_blocks(g, feasible, 2)
        assert decomposition_overlap(blocks) == pytest.approx(1.0)

    def test_definition_matches_manual_count(self):
        g = social_network(200, attachment=3, seed=8)
        feasible, _ = cut(g, 15)
        blocks = build_blocks(g, feasible, 15)
        total = sum(b.size for b in blocks)
        distinct = set()
        for b in blocks:
            distinct.update(b.graph.nodes())
        assert decomposition_overlap(blocks) == pytest.approx(
            total / len(distinct)
        )
        assert decomposition_overlap(blocks) >= 1.0

    def test_end_to_end_output_unchanged(self):
        g = social_network(120, attachment=3, seed=9)
        a = find_max_cliques(g, 20)
        assert set(a.cliques) == nx_cliques(g)

"""Unit tests for the uniform-size second-level decomposition."""

from __future__ import annotations

import pytest

from repro.core.block_analysis import analyze_blocks
from repro.core.blocks import build_blocks, validate_blocks
from repro.core.feasibility import cut
from repro.core.uniform_blocks import (
    block_size_spread,
    build_uniform_blocks,
    mean_block_density,
)
from repro.errors import DecompositionError
from repro.graph.generators import erdos_renyi, social_network, star_graph


class TestInvariants:
    @pytest.mark.parametrize("m", [5, 10, 20])
    def test_same_invariants_as_density_seeking(self, m):
        for seed in range(3):
            g = erdos_renyi(30, 0.2, seed=seed)
            feasible, _ = cut(g, m)
            blocks = build_uniform_blocks(g, feasible, m)
            validate_blocks(g, blocks, feasible, m)

    def test_same_cliques_as_density_seeking(self):
        g = social_network(120, attachment=3, planted_cliques=(8,), seed=5)
        m = 20
        feasible, _ = cut(g, m)
        dense_cliques, _ = analyze_blocks(build_blocks(g, feasible, m))
        uniform_cliques, _ = analyze_blocks(build_uniform_blocks(g, feasible, m))
        assert set(dense_cliques) == set(uniform_cliques)

    def test_kernel_order_is_insertion_order(self):
        g = erdos_renyi(20, 0.1, seed=2)
        feasible, _ = cut(g, 10)
        blocks = build_uniform_blocks(g, feasible, 10)
        flattened = [n for b in blocks for n in b.kernel]
        assert flattened == feasible

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            build_uniform_blocks(erdos_renyi(5, 0.5, seed=1), [], 0)

    def test_hub_as_feasible_detected(self):
        g = star_graph(6)
        with pytest.raises(DecompositionError):
            build_uniform_blocks(g, [0], 3)

    def test_empty_feasible(self):
        assert build_uniform_blocks(erdos_renyi(5, 0.5, seed=1), [], 4) == []


class TestMetrics:
    def test_spread_empty(self):
        assert block_size_spread([]) == 0.0

    def test_density_empty(self):
        assert mean_block_density([]) == 0.0

    def test_density_seeking_is_denser(self):
        # The point of the heterogeneous strategy: blocks built along
        # adjacency are internally denser than insertion-order blocks.
        g = social_network(300, attachment=3, closure_probability=0.6, seed=9)
        m = 25
        feasible, _ = cut(g, m)
        dense = build_blocks(g, feasible, m)
        uniform = build_uniform_blocks(g, feasible, m)
        assert mean_block_density(dense) > mean_block_density(uniform)

"""Unit tests for block feature extraction."""

from __future__ import annotations

import pytest

from repro.decision.features import FEATURE_NAMES, BlockFeatures, extract_features
from repro.graph.adjacency import Graph
from repro.graph.generators import complete_graph, cycle_graph


class TestBlockFeatures:
    def test_of_complete(self):
        features = BlockFeatures.of(complete_graph(6))
        assert features.num_nodes == 6
        assert features.num_edges == 15
        assert features.density == pytest.approx(1.0)
        assert features.degeneracy == 5
        assert features.d_star == 5

    def test_of_empty(self):
        features = BlockFeatures.of(Graph())
        assert features.vector() == (0.0, 0.0, 0.0, 0.0, 0.0)

    def test_vector_order_matches_names(self):
        features = BlockFeatures.of(cycle_graph(5))
        vector = features.vector()
        assert len(vector) == len(FEATURE_NAMES)
        for name, value in zip(FEATURE_NAMES, vector):
            assert features.value(name) == value

    def test_value_by_name(self):
        features = BlockFeatures.of(cycle_graph(5))
        assert features.value("num_nodes") == 5.0
        assert features.value("degeneracy") == 2.0

    def test_unknown_feature(self):
        features = BlockFeatures.of(Graph())
        with pytest.raises(KeyError):
            features.value("diameter")

    def test_free_function(self):
        g = cycle_graph(4)
        assert extract_features(g) == BlockFeatures.of(g)

    def test_frozen(self):
        features = BlockFeatures.of(Graph())
        with pytest.raises(AttributeError):
            features.num_nodes = 7  # type: ignore[misc]

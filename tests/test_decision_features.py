"""Unit tests for block feature extraction and cost estimation."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import numpy as np

from repro.core.blocks import build_blocks
from repro.core.block_analysis import analyze_blocks
from repro.core.feasibility import cut
from repro.decision.features import (
    FEATURE_NAMES,
    BlockFeatures,
    adaptive_batch_cutoff,
    adaptive_split_threshold,
    estimate_analysis_cost,
    extract_features,
    features_from_bitmap,
)
from repro.graph.adjacency import Graph
from repro.graph.csr import CSRGraph, extract_block_bitmap
from repro.graph.generators import complete_graph, cycle_graph, planted_straggler
from repro.mce.instrumentation import BlockTiming, ExecutionTrace


class TestBlockFeatures:
    def test_of_complete(self):
        features = BlockFeatures.of(complete_graph(6))
        assert features.num_nodes == 6
        assert features.num_edges == 15
        assert features.density == pytest.approx(1.0)
        assert features.degeneracy == 5
        assert features.d_star == 5

    def test_of_empty(self):
        features = BlockFeatures.of(Graph())
        assert features.vector() == (0.0, 0.0, 0.0, 0.0, 0.0)

    def test_vector_order_matches_names(self):
        features = BlockFeatures.of(cycle_graph(5))
        vector = features.vector()
        assert len(vector) == len(FEATURE_NAMES)
        for name, value in zip(FEATURE_NAMES, vector):
            assert features.value(name) == value

    def test_value_by_name(self):
        features = BlockFeatures.of(cycle_graph(5))
        assert features.value("num_nodes") == 5.0
        assert features.value("degeneracy") == 2.0

    def test_unknown_feature(self):
        features = BlockFeatures.of(Graph())
        with pytest.raises(KeyError):
            features.value("diameter")

    def test_free_function(self):
        g = cycle_graph(4)
        assert extract_features(g) == BlockFeatures.of(g)

    def test_frozen(self):
        features = BlockFeatures.of(Graph())
        with pytest.raises(AttributeError):
            features.num_nodes = 7  # type: ignore[misc]


class TestEstimateAnalysisCost:
    """Properties the dispatch and split heuristics rely on.

    Only the *ordering* of estimates matters (LPT dispatch, split
    threshold), so the contract is: non-negative, and monotone
    non-decreasing in both node and edge count.  The earlier
    ``n * 3^(avg_degree/3)`` form violated node-monotonicity, and the
    earlier direct ``pow`` raised ``OverflowError`` on web-scale counts
    (a 50k-node block with 10^9 edges), so the bounds cover the
    saturation boundary: estimates past float range collapse to the
    shared ``inf`` plateau instead of raising.
    """

    nodes = st.integers(min_value=0, max_value=10**6)
    edges = st.integers(min_value=0, max_value=10**12)

    @given(n=nodes, e=edges)
    def test_never_negative(self, n, e):
        assert estimate_analysis_cost(n, e) >= 0.0

    @given(n=nodes, e=edges)
    def test_monotone_in_nodes(self, n, e):
        assert estimate_analysis_cost(n + 1, e) >= estimate_analysis_cost(n, e)

    @given(n=nodes, e=edges)
    def test_monotone_in_edges(self, n, e):
        assert estimate_analysis_cost(n, e + 1) >= estimate_analysis_cost(n, e)

    def test_empty_block_is_free(self):
        assert estimate_analysis_cost(0, 0) == 0.0

    def test_dense_beats_sparse_at_equal_size(self):
        sparse = estimate_analysis_cost(30, 29)
        dense = estimate_analysis_cost(30, 300)
        assert dense > sparse

    def test_web_scale_block_saturates_instead_of_raising(self):
        # Regression: this exact call used to raise OverflowError in
        # math.pow, crashing dispatch on hub-dominated web graphs.
        cost = estimate_analysis_cost(50_000, 10**9)
        assert cost == float("inf")

    def test_saturation_boundary_is_monotone(self):
        # Just below the inf plateau the exact value is still returned,
        # and crossing the boundary never decreases the estimate.
        finite = estimate_analysis_cost(200, 5_000)
        assert math.isfinite(finite) and finite > 0.0
        previous = 0.0
        for n in (10, 100, 1_000, 10_000, 100_000):
            cost = estimate_analysis_cost(n, n * n)
            assert cost >= previous
            previous = cost

    def test_matches_features_method(self):
        features = BlockFeatures.of(complete_graph(8))
        assert features.estimated_cost() == estimate_analysis_cost(8, 28)


class TestAdaptiveBatchCutoff:
    def test_empty_batch_uses_floor(self):
        assert adaptive_batch_cutoff([]) == 64

    def test_tiny_blocks_floor_at_one_word(self):
        assert adaptive_batch_cutoff([3, 5, 4, 6, 2]) == 64

    def test_median_rounds_to_quantum(self):
        # Median 90 rounds up to the next multiple of 8.
        assert adaptive_batch_cutoff([10, 90, 200]) == 96

    def test_large_median_wins_over_floor(self):
        assert adaptive_batch_cutoff([128] * 5) == 128


class TestAdaptiveSplitThreshold:
    def test_serial_never_splits(self):
        assert adaptive_split_threshold([100.0, 1.0], 1) == float("inf")

    def test_empty_batch(self):
        assert adaptive_split_threshold([], 4) == float("inf")

    def test_zero_cost_batch(self):
        assert adaptive_split_threshold([0.0, 0.0], 4) == float("inf")

    def test_uniform_batch_not_shredded(self):
        # Near-uniform costs: every block sits near the fair share, so
        # none should cross the threshold.
        costs = [10.0, 11.0, 9.0, 10.0, 10.5, 9.5, 10.0, 10.0]
        threshold = adaptive_split_threshold(costs, 4)
        assert all(cost < threshold for cost in costs)

    def test_straggler_crosses_threshold(self):
        costs = [100.0] + [1.0] * 20
        threshold = adaptive_split_threshold(costs, 4)
        assert costs[0] > threshold
        assert all(cost < threshold for cost in costs[1:])

    def test_fewer_tasks_than_workers_uses_fair_share(self):
        # Two blocks, four workers: splitting is the only parallelism,
        # so the threshold drops to the fair share.
        costs = [40.0, 20.0]
        assert adaptive_split_threshold(costs, 4) == pytest.approx(15.0)


class TestCostCalibration:
    """The estimate agrees with measured timings where it matters.

    The heuristic cannot predict absolute seconds, but the straggler it
    exists to catch — the one block whose measured time dominates the
    batch — must also carry the largest estimate, or the split threshold
    fires on the wrong block.  Measured per-block times come from an
    :class:`ExecutionTrace` built over a generated corpus with strongly
    separated block densities (one dense community, many tiny ones), so
    the assertion is immune to scheduler jitter on CI machines.
    """

    def test_estimate_identifies_measured_straggler(self):
        graph = planted_straggler(
            dense_nodes=22, dense_p=0.6, tiny_blocks=8, tiny_size=5, seed=7
        )
        feasible, _ = cut(graph, 32)
        blocks = build_blocks(graph, feasible, 32)
        _, reports = analyze_blocks(blocks)
        trace = ExecutionTrace()
        for block_id, report in enumerate(reports):
            trace.record(
                BlockTiming(
                    block_id=block_id,
                    seconds=report.seconds,
                    cliques=len(report.cliques),
                )
            )
        measured = {t.block_id: t.seconds for t in trace.timings}
        estimated = {
            block_id: report.features.estimated_cost()
            for block_id, report in enumerate(reports)
        }
        assert len(measured) > 1
        slowest = max(measured, key=measured.get)
        costliest = max(estimated, key=estimated.get)
        assert slowest == costliest
        # And the separation is real: the straggler dominates on both
        # axes, not by a rounding hair.
        others_measured = [s for b, s in measured.items() if b != slowest]
        others_estimated = [c for b, c in estimated.items() if b != costliest]
        assert measured[slowest] > 2.0 * max(others_measured)
        assert estimated[costliest] > 2.0 * max(others_estimated)


class TestBitmapFeatureParity:
    """``features_from_bitmap`` must agree exactly with ``BlockFeatures.of``.

    The zero-copy worker path extracts features from the packed
    adjacency bitmap it already materialized, never expanding a dict
    graph; if the two extractions ever disagree, the decision tree
    would pick different combos for the same block depending on which
    dispatch path ran it.  Property-checked over random graphs
    (isolated nodes included — the bitmap row is all zeros there).
    """

    @given(
        n=st.integers(min_value=1, max_value=14),
        edge_bits=st.integers(min_value=0),
        data=st.data(),
    )
    @settings(max_examples=80, deadline=None)
    def test_extractions_identical(self, n, edge_bits, data):
        pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
        chosen = data.draw(st.lists(st.sampled_from(pairs), unique=True)) if pairs else []
        graph = Graph()
        for node in range(n):
            graph.add_node(node)
        for u, v in chosen:
            graph.add_edge(u, v)
        csr = CSRGraph(graph)
        bitmap = extract_block_bitmap(
            csr.indptr, csr.indices, np.arange(n, dtype=np.int64)
        )
        assert features_from_bitmap(bitmap) == BlockFeatures.of(graph)

    def test_complete_graph_parity(self):
        graph = complete_graph(9)
        csr = CSRGraph(graph)
        bitmap = extract_block_bitmap(
            csr.indptr, csr.indices, np.arange(9, dtype=np.int64)
        )
        features = features_from_bitmap(bitmap)
        assert features == BlockFeatures.of(graph)
        assert features.vector() == (9.0, 36.0, 1.0, 8.0, 8.0)

"""Unit tests for trace harvesting and trace-driven retraining."""

from __future__ import annotations

import pytest

from repro.core.driver import find_max_cliques
from repro.decision.features import BlockFeatures
from repro.decision.harvest import (
    counterfactual_rows,
    harvest_workload,
    rows_from_result,
    rows_from_run_dir,
    rows_from_trace,
    sample_blocks,
    workload_blocks,
)
from repro.decision.paper_tree import paper_tree
from repro.decision.training import (
    block_selection_overhead,
    corpus_fingerprint,
    label_rows,
    train_from_rows,
)
from repro.decision.harvest import TrainingRow
from repro.decision.tree import num_leaves
from repro.errors import TrainingError
from repro.graph.generators import social_network
from repro.mce.instrumentation import BlockTiming, ExecutionTrace
from repro.mce.registry import ALL_COMBOS

M = 30


@pytest.fixture(scope="module")
def graph():
    return social_network(100, attachment=3, planted_cliques=(8,), seed=5)


def features(nodes=10, edges=20):
    return BlockFeatures(
        num_nodes=nodes,
        num_edges=edges,
        density=0.4,
        degeneracy=4,
        d_star=4,
    )


def row(combo="[Lists/Tomita]", seconds=1.0, level=0, block_id=0, nodes=10):
    return TrainingRow(
        features=features(nodes=nodes),
        combo=combo,
        seconds=seconds,
        level=level,
        block_id=block_id,
    )


class TestRowsFromResult:
    def test_live_rows_cover_every_report(self, graph):
        result = find_max_cliques(graph, M, collect_reports=True)
        rows = rows_from_result(result)
        assert len(rows) == sum(len(r) for r in result.block_reports)
        assert all(r.source == "live" for r in rows)
        assert all(r.combo.startswith("[") for r in rows)
        assert all(len(r.vector()) == 5 for r in rows)
        assert all(r.seconds >= 0.0 for r in rows)
        # levels/block ids identify blocks uniquely
        keys = [(r.level, r.block_id) for r in rows]
        assert len(keys) == len(set(keys))

    def test_result_without_reports_rejected(self, graph):
        result = find_max_cliques(graph, M)
        with pytest.raises(TrainingError, match="collect_reports"):
            rows_from_result(result)


class TestRowsFromTrace:
    def test_skips_unusable_records(self):
        trace = ExecutionTrace()
        good = BlockTiming(
            block_id=0,
            seconds=0.5,
            cliques=3,
            combo="[Lists/Tomita]",
            features=features().vector(),
        )
        legacy = BlockTiming(block_id=1, seconds=0.5, cliques=3)
        replayed_free = BlockTiming(
            block_id=2,
            seconds=0.0,
            cliques=3,
            replayed=True,
            combo="[Lists/Tomita]",
            features=features().vector(),
        )
        retried = BlockTiming(
            block_id=3,
            seconds=0.2,
            cliques=1,
            retried=True,
            combo="[BitSets/Eppstein]",
            features=features().vector(),
        )
        for timing in (good, legacy, replayed_free, retried):
            trace.record(timing)
        rows = rows_from_trace(trace, level=2)
        assert [r.block_id for r in rows] == [0, 3]
        assert all(r.level == 2 for r in rows)
        assert rows[0].features == features()
        assert rows[1].knobs == ("retried",)


class TestRowsFromRunDir:
    def test_replayed_rows_from_spill_segments(self, graph, tmp_path):
        spill = tmp_path / "run"
        result = find_max_cliques(graph, M, spill_dir=spill)
        rows = rows_from_run_dir(spill)
        assert rows
        assert all(r.source == "replayed" for r in rows)
        assert all(r.combo and len(r.vector()) == 5 for r in rows)
        assert result.num_cliques > 0

    def test_empty_dir_rejected(self, tmp_path):
        with pytest.raises(TrainingError, match="no spill segments"):
            rows_from_run_dir(tmp_path)


class TestWorkloadBlocks:
    def test_mirrors_driver_block_count(self, graph):
        result = find_max_cliques(graph, M, collect_reports=True)
        blocks = workload_blocks(graph, M)
        assert len(blocks) == sum(len(r) for r in result.block_reports)
        levels = {level for level, _, _ in blocks}
        assert levels == set(range(len(result.block_reports)))


class TestSampleBlocks:
    def test_small_sample_is_deterministic_and_cost_biased(self, graph):
        blocks = workload_blocks(graph, M)
        sample = sample_blocks(blocks, 4, seed=1)
        assert sample == sample_blocks(blocks, 4, seed=1)
        assert len(sample) == 4
        costliest = max(
            blocks, key=lambda b: BlockFeatures.of(b[2].graph).estimated_cost()
        )
        assert costliest in sample

    def test_oversized_sample_returns_everything(self, graph):
        blocks = workload_blocks(graph, M)
        assert sample_blocks(blocks, len(blocks) + 5) == blocks
        assert sample_blocks(blocks, 0) == blocks


class TestCounterfactual:
    def test_every_combo_measured_per_block(self, graph):
        blocks = sample_blocks(workload_blocks(graph, M), 2, seed=0)
        combos = ALL_COMBOS[:3]
        rows = counterfactual_rows(blocks, combos=combos)
        assert len(rows) == len(blocks) * len(combos)
        assert all(r.source == "counterfactual" for r in rows)
        per_block = {(r.level, r.block_id) for r in rows}
        assert per_block == {(lvl, bid) for lvl, bid, _ in blocks}

    def test_empty_combos_rejected(self):
        with pytest.raises(TrainingError, match="no combinations"):
            counterfactual_rows([], combos=())

    def test_bad_repeats_rejected(self):
        with pytest.raises(TrainingError, match="repeats"):
            counterfactual_rows([], repeats=0)


class TestHarvestWorkload:
    def test_mixed_sources(self, graph):
        harvest = harvest_workload(graph, M, combos=ALL_COMBOS[:2], sample=3)
        assert harvest.blocks_sampled == 3
        assert harvest.blocks_sampled <= harvest.blocks_total
        assert harvest.live_rows > 0
        assert harvest.counterfactual_rows == 3 * 2


class TestLabelRows:
    def test_argmin_wins(self):
        rows = [
            row(combo="[Lists/Tomita]", seconds=2.0),
            row(combo="[BitSets/Tomita]", seconds=1.0),
            # a second, slower measurement of the winner: min() is kept
            row(combo="[BitSets/Tomita]", seconds=5.0),
        ]
        samples = label_rows(rows)
        assert len(samples) == 1
        assert samples[0].best == "[BitSets/Tomita]"
        assert samples[0].timings["[BitSets/Tomita]"] == 1.0
        assert samples[0].regret("[Lists/Tomita]") == pytest.approx(1.0)

    def test_single_combo_blocks_dropped(self):
        rows = [
            row(combo="[Lists/Tomita]", seconds=2.0, block_id=0),
            row(combo="[Lists/Tomita]", seconds=1.0, block_id=1),
            row(combo="[Lists/Tomita]", seconds=2.0, block_id=2),
            row(combo="[BitSets/Tomita]", seconds=1.0, block_id=2),
        ]
        samples = label_rows(rows)
        assert [s.block_id for s in samples] == [2]

    def test_nothing_survives_rejected(self):
        with pytest.raises(TrainingError):
            label_rows([row()])


class TestTrainFromRows:
    def rows(self):
        # Small blocks are cheapest on lists, large ones on bitsets —
        # one num_nodes split separates the corpus perfectly.
        rows = []
        for block_id, nodes in enumerate((5, 8, 40, 60)):
            small = nodes < 20
            rows.append(
                row(
                    combo="[Lists/Tomita]",
                    seconds=1.0 if small else 9.0,
                    block_id=block_id,
                    nodes=nodes,
                )
            )
            rows.append(
                row(
                    combo="[BitSets/Tomita]",
                    seconds=5.0 if small else 2.0,
                    block_id=block_id,
                    nodes=nodes,
                )
            )
        return rows

    def test_learns_the_separating_split(self):
        result = train_from_rows(self.rows())
        assert result.training_accuracy == 1.0
        assert result.tree.predict(features(nodes=6)) == "[Lists/Tomita]"
        assert result.tree.predict(features(nodes=50)) == "[BitSets/Tomita]"
        assert result.win_counts == {
            "[Lists/Tomita]": 2,
            "[BitSets/Tomita]": 2,
        }
        assert result.total_time() == pytest.approx(1.0 + 1.0 + 2.0 + 2.0)
        assert result.total_regret() == pytest.approx(0.0)

    def test_fixed_chooser_prices_unmeasured_at_worst(self):
        result = train_from_rows(self.rows())
        assert result.total_time("[Lists/Tomita]") == pytest.approx(20.0)
        assert result.total_time("[Matrix/Tomita]") == pytest.approx(
            5.0 + 5.0 + 9.0 + 9.0
        )

    def test_huge_alpha_collapses_to_one_leaf(self):
        result = train_from_rows(self.rows(), prune_alpha=1e9)
        assert num_leaves(result.tree) == 1
        assert result.unpruned_leaves >= 2

    def test_fingerprint_tracks_the_measurements(self):
        base = train_from_rows(self.rows()).fingerprint
        assert base == train_from_rows(self.rows()).fingerprint
        perturbed = self.rows()
        perturbed[0] = row(
            combo="[Lists/Tomita]", seconds=1.5, block_id=0, nodes=5
        )
        assert train_from_rows(perturbed).fingerprint != base
        assert len(base) == 64  # sha256 hex

    def test_fingerprint_order_independent(self):
        samples = label_rows(self.rows())
        assert corpus_fingerprint(samples) == corpus_fingerprint(
            list(reversed(samples))
        )


class TestSelectionOverheadBudget:
    def test_prediction_stays_under_one_percent(self, graph):
        harvest = harvest_workload(graph, M, combos=ALL_COMBOS[:2], sample=4)
        result = train_from_rows(harvest.rows)
        overhead = min(
            block_selection_overhead(result.samples, result.tree)
            for _ in range(5)
        )
        assert overhead < 0.01 * max(result.total_time(), 1e-9)


class TestEndToEndRetrainBeatsNothing:
    """The tuned tree can never do worse than the oracle says it did."""

    def test_tuned_tree_bounded_by_oracle_and_paper(self, graph):
        harvest = harvest_workload(graph, M, sample=4)
        result = train_from_rows(harvest.rows)
        oracle = sum(s.timings[s.best] for s in result.samples)
        paper_total = sum(
            s.timings.get(
                paper_tree().predict(s.features), max(s.timings.values())
            )
            for s in result.samples
        )
        assert oracle <= result.total_time() <= paper_total + 1e-9


class TestExecutorTraceRecordsCombos:
    def test_shared_executor_timings_harvestable(self, graph):
        from repro.distributed.executor import SharedMemoryExecutor

        executor = SharedMemoryExecutor(max_workers=2)
        result = find_max_cliques(graph, M, executor=executor)
        trace = executor.last_trace
        assert result.num_cliques > 0
        assert trace is not None and trace.timings
        rows = rows_from_trace(trace)
        assert rows
        assert all(r.combo and len(r.vector()) == 5 for r in rows)

"""Unit tests for the published Figure 3 decision tree."""

from __future__ import annotations

import pytest

from repro.decision.features import BlockFeatures
from repro.decision.paper_tree import (
    BITSETS_TOMITA,
    LISTS_XPIVOT,
    MATRIX_BKPIVOT,
    MATRIX_XPIVOT,
    combo_for_label,
    paper_tree,
    select_combo,
)


def features(nodes=100, degeneracy=5):
    return BlockFeatures(
        num_nodes=nodes,
        num_edges=nodes,
        density=0.1,
        degeneracy=degeneracy,
        d_star=degeneracy,
    )


class TestFigure3Routing:
    def test_sparse_goes_to_lists_xpivot(self):
        # degeneracy <= 25 -> [Lists/XPivot].
        assert paper_tree().predict(features(degeneracy=10)) == LISTS_XPIVOT

    def test_boundary_degeneracy_25_is_sparse(self):
        assert paper_tree().predict(features(degeneracy=25)) == LISTS_XPIVOT

    def test_large_dense_goes_to_matrix_xpivot(self):
        # degeneracy > 25, nodes >= 8558 -> [Matrix/XPivot].
        assert (
            paper_tree().predict(features(nodes=9000, degeneracy=30))
            == MATRIX_XPIVOT
        )

    def test_small_very_dense_goes_to_bitsets_tomita(self):
        # degeneracy > 52, nodes < 8558 -> [BitSets/Tomita].
        assert (
            paper_tree().predict(features(nodes=500, degeneracy=60))
            == BITSETS_TOMITA
        )

    def test_small_medium_dense_goes_to_matrix_bkpivot(self):
        # 25 < degeneracy <= 52, nodes < 8558 -> [Matrix/BKPivot].
        assert (
            paper_tree().predict(features(nodes=500, degeneracy=40))
            == MATRIX_BKPIVOT
        )

    def test_node_boundary(self):
        # Exactly 8558 nodes is NOT "< 8558".
        assert (
            paper_tree().predict(features(nodes=8558, degeneracy=30))
            == MATRIX_XPIVOT
        )
        assert (
            paper_tree().predict(features(nodes=8557, degeneracy=30))
            == MATRIX_BKPIVOT
        )

    def test_all_four_leaves_reachable(self):
        tree = paper_tree()
        labels = {
            tree.predict(features(degeneracy=5)),
            tree.predict(features(nodes=9000, degeneracy=30)),
            tree.predict(features(nodes=100, degeneracy=60)),
            tree.predict(features(nodes=100, degeneracy=30)),
        }
        assert labels == {
            LISTS_XPIVOT,
            MATRIX_XPIVOT,
            BITSETS_TOMITA,
            MATRIX_BKPIVOT,
        }


class TestComboTranslation:
    def test_known_labels(self):
        combo = combo_for_label(LISTS_XPIVOT)
        assert combo.algorithm == "xpivot"
        assert combo.backend == "lists"

    def test_unknown_label(self):
        with pytest.raises(KeyError):
            combo_for_label("[Trie/Dijkstra]")

    def test_select_combo_end_to_end(self):
        combo = select_combo(paper_tree(), features(degeneracy=60, nodes=100))
        assert combo.algorithm == "tomita"
        assert combo.backend == "bitsets"

    def test_selected_combo_runs(self):
        from repro.graph.generators import complete_graph
        from repro.mce.registry import run_combo

        combo = select_combo(paper_tree(), features())
        assert run_combo(complete_graph(4), combo) == [frozenset(range(4))]

"""Unit tests for decision-tree JSON persistence."""

from __future__ import annotations

import pytest

from repro.decision.features import BlockFeatures
from repro.decision.paper_tree import paper_tree
from repro.decision.persistence import (
    load_tree,
    save_tree,
    tree_from_dict,
    tree_to_dict,
)
from repro.decision.training import build_corpus, label_corpus, train
from repro.decision.tree import Leaf, Split
from repro.errors import FormatError


def features(nodes=100, degeneracy=5):
    return BlockFeatures(
        num_nodes=nodes,
        num_edges=nodes,
        density=0.1,
        degeneracy=degeneracy,
        d_star=degeneracy,
    )


class TestDictRoundTrip:
    def test_leaf(self):
        leaf = Leaf("x")
        assert tree_from_dict(tree_to_dict(leaf)) == leaf

    def test_paper_tree(self):
        tree = paper_tree()
        restored = tree_from_dict(tree_to_dict(tree))
        assert restored == tree

    def test_predictions_preserved(self):
        tree = paper_tree()
        restored = tree_from_dict(tree_to_dict(tree))
        for degeneracy in (5, 30, 60):
            for nodes in (100, 10_000):
                sample = features(nodes=nodes, degeneracy=degeneracy)
                assert restored.predict(sample) == tree.predict(sample)


class TestFileRoundTrip:
    def test_save_load(self, tmp_path):
        path = tmp_path / "tree.json"
        save_tree(paper_tree(), path)
        assert load_tree(path) == paper_tree()

    def test_trained_tree_roundtrip(self, tmp_path):
        corpus = build_corpus(count=10, seed=2, size_range=(15, 40))
        labelled = label_corpus(corpus)
        result = train(labelled, seed=4)
        path = tmp_path / "trained.json"
        save_tree(result.tree, path)
        assert load_tree(path) == result.tree

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(FormatError):
            load_tree(path)


class TestMalformedPayloads:
    def test_unknown_kind(self):
        with pytest.raises(FormatError, match="kind"):
            tree_from_dict({"kind": "forest"})

    def test_leaf_without_label(self):
        with pytest.raises(FormatError, match="label"):
            tree_from_dict({"kind": "leaf"})

    def test_split_missing_field(self):
        with pytest.raises(FormatError, match="missing"):
            tree_from_dict({"kind": "split", "feature": "density"})

    def test_split_unknown_feature(self):
        payload = {
            "kind": "split",
            "feature": "diameter",
            "threshold": 1,
            "if_true": {"kind": "leaf", "label": "a"},
            "if_false": {"kind": "leaf", "label": "b"},
        }
        with pytest.raises(FormatError, match="malformed split"):
            tree_from_dict(payload)

    def test_non_dict(self):
        with pytest.raises(FormatError):
            tree_from_dict([1, 2, 3])  # type: ignore[arg-type]

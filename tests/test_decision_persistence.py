"""Unit tests for decision-tree JSON persistence."""

from __future__ import annotations

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.decision.features import FEATURE_NAMES, BlockFeatures
from repro.decision.paper_tree import extended_tree, paper_tree
from repro.decision.persistence import (
    TREE_SCHEMA_VERSION,
    TUNED_TREE_ENV,
    default_tree_path,
    load_default_tree,
    load_tree,
    load_tree_with_metadata,
    resolve_tree,
    save_tree,
    tree_from_dict,
    tree_metadata,
    tree_to_dict,
)
from repro.decision.training import build_corpus, label_corpus, train
from repro.decision.tree import Leaf, Split
from repro.errors import FormatError, ReproError


def features(nodes=100, degeneracy=5):
    return BlockFeatures(
        num_nodes=nodes,
        num_edges=nodes,
        density=0.1,
        degeneracy=degeneracy,
        d_star=degeneracy,
    )


class TestDictRoundTrip:
    def test_leaf(self):
        leaf = Leaf("x")
        assert tree_from_dict(tree_to_dict(leaf)) == leaf

    def test_paper_tree(self):
        tree = paper_tree()
        restored = tree_from_dict(tree_to_dict(tree))
        assert restored == tree

    def test_predictions_preserved(self):
        tree = paper_tree()
        restored = tree_from_dict(tree_to_dict(tree))
        for degeneracy in (5, 30, 60):
            for nodes in (100, 10_000):
                sample = features(nodes=nodes, degeneracy=degeneracy)
                assert restored.predict(sample) == tree.predict(sample)


class TestFileRoundTrip:
    def test_save_load(self, tmp_path):
        path = tmp_path / "tree.json"
        save_tree(paper_tree(), path)
        assert load_tree(path) == paper_tree()

    def test_trained_tree_roundtrip(self, tmp_path):
        corpus = build_corpus(count=10, seed=2, size_range=(15, 40))
        labelled = label_corpus(corpus)
        result = train(labelled, seed=4)
        path = tmp_path / "trained.json"
        save_tree(result.tree, path)
        assert load_tree(path) == result.tree

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(FormatError):
            load_tree(path)


class TestMalformedPayloads:
    def test_unknown_kind(self):
        with pytest.raises(FormatError, match="kind"):
            tree_from_dict({"kind": "forest"})

    def test_leaf_without_label(self):
        with pytest.raises(FormatError, match="label"):
            tree_from_dict({"kind": "leaf"})

    def test_split_missing_field(self):
        with pytest.raises(FormatError, match="missing"):
            tree_from_dict({"kind": "split", "feature": "density"})

    def test_split_unknown_feature(self):
        payload = {
            "kind": "split",
            "feature": "diameter",
            "threshold": 1,
            "if_true": {"kind": "leaf", "label": "a"},
            "if_false": {"kind": "leaf", "label": "b"},
        }
        with pytest.raises(FormatError, match="malformed split"):
            tree_from_dict(payload)

    def test_non_dict(self):
        with pytest.raises(FormatError):
            tree_from_dict([1, 2, 3])  # type: ignore[arg-type]


class TestVersionedEnvelope:
    def test_payload_carries_version(self):
        payload = tree_to_dict(paper_tree())
        assert payload["version"] == TREE_SCHEMA_VERSION
        assert payload["root"]["kind"] == "split"
        assert "metadata" not in payload

    def test_metadata_round_trip(self, tmp_path):
        path = tmp_path / "tree.json"
        metadata = {"corpus_fingerprint": "abc", "rows": 12}
        save_tree(paper_tree(), path, metadata=metadata)
        tree, restored = load_tree_with_metadata(path)
        assert tree == paper_tree()
        assert restored == metadata

    def test_unknown_version_refused(self):
        payload = tree_to_dict(paper_tree())
        payload["version"] = 99
        with pytest.raises(FormatError, match="version 99"):
            tree_from_dict(payload)
        # the satellite contract: refusal must read as a ValueError too
        with pytest.raises(ValueError):
            tree_from_dict(payload)

    def test_envelope_without_root_refused(self):
        with pytest.raises(FormatError, match="root"):
            tree_from_dict({"version": TREE_SCHEMA_VERSION})

    def test_legacy_bare_node_still_loads(self, tmp_path):
        # payloads written before the envelope existed: a bare node dict
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps({"kind": "leaf", "label": "x"}))
        assert load_tree(path) == Leaf("x")
        assert tree_metadata({"kind": "leaf", "label": "x"}) == {}


def _random_trees():
    labels = st.sampled_from(["[Lists/Tomita]", "[BitSets/Eppstein]", "c"])
    leaves = st.builds(Leaf, labels)
    finite = st.floats(allow_nan=False, allow_infinity=False)
    return st.recursive(
        leaves,
        lambda children: st.builds(
            Split,
            feature=st.sampled_from(FEATURE_NAMES),
            threshold=finite,
            if_true=children,
            if_false=children,
        ),
        max_leaves=12,
    )


class TestHypothesisRoundTrip:
    @given(tree=_random_trees())
    def test_dict_round_trip_is_identity(self, tree):
        assert tree_from_dict(tree_to_dict(tree)) == tree

    @given(tree=_random_trees())
    def test_json_text_round_trip_is_identity(self, tree):
        text = json.dumps(tree_to_dict(tree, metadata={"k": "v"}))
        payload = json.loads(text)
        assert tree_from_dict(payload) == tree
        assert tree_metadata(payload) == {"k": "v"}


class TestDefaultTreePath:
    def test_env_override(self, tmp_path, monkeypatch):
        target = tmp_path / "elsewhere.json"
        monkeypatch.setenv(TUNED_TREE_ENV, str(target))
        assert default_tree_path() == target

    def test_home_fallback(self, monkeypatch, tmp_path):
        monkeypatch.delenv(TUNED_TREE_ENV, raising=False)
        monkeypatch.setenv("HOME", str(tmp_path))
        assert default_tree_path() == tmp_path / ".repro" / "tuned_tree.json"

    def test_load_default_tree_none_when_missing(self, tmp_path, monkeypatch):
        monkeypatch.setenv(TUNED_TREE_ENV, str(tmp_path / "missing.json"))
        assert load_default_tree() is None

    def test_load_default_tree_reads_installed(self, tmp_path, monkeypatch):
        target = tmp_path / "tuned.json"
        save_tree(paper_tree(), target)
        monkeypatch.setenv(TUNED_TREE_ENV, str(target))
        assert load_default_tree() == paper_tree()


class TestResolveTree:
    def test_none_and_trees_pass_through(self):
        assert resolve_tree(None) is None
        tree = paper_tree()
        assert resolve_tree(tree) is tree

    def test_named_specs(self):
        assert resolve_tree("paper") == paper_tree()
        assert resolve_tree("extended") == extended_tree()

    def test_auto_uses_installed_tree(self, tmp_path, monkeypatch):
        target = tmp_path / "tuned.json"
        monkeypatch.setenv(TUNED_TREE_ENV, str(target))
        assert resolve_tree("auto") is None
        save_tree(extended_tree(), target)
        assert resolve_tree("auto") == extended_tree()

    def test_path_spec(self, tmp_path):
        path = tmp_path / "tree.json"
        save_tree(paper_tree(), path)
        assert resolve_tree(str(path)) == paper_tree()

    def test_unreadable_path_is_a_format_error(self, tmp_path):
        with pytest.raises(FormatError, match="cannot read"):
            resolve_tree(str(tmp_path / "missing.json"))
        with pytest.raises(ReproError):
            resolve_tree(str(tmp_path / "missing.json"))

"""Unit tests for the decision-tree training pipeline."""

from __future__ import annotations

import pytest

from repro.decision.training import (
    build_corpus,
    label_corpus,
    train,
    win_counts,
)
from repro.errors import TrainingError
from repro.graph.generators import complete_graph, cycle_graph
from repro.mce.registry import Combo


def tiny_combos():
    """Two cheap combos so labelling stays fast in unit tests."""
    return (Combo("tomita", "bitsets"), Combo("xpivot", "lists"))


class TestBuildCorpus:
    def test_count(self):
        corpus = build_corpus(count=12, seed=1, size_range=(15, 30))
        assert len(corpus) == 12

    def test_deterministic(self):
        a = build_corpus(count=8, seed=3, size_range=(15, 25))
        b = build_corpus(count=8, seed=3, size_range=(15, 25))
        assert [name for name, _ in a] == [name for name, _ in b]
        assert all(x == y for (_, x), (_, y) in zip(a, b))

    def test_heterogeneous_families(self):
        corpus = build_corpus(count=8, seed=2, size_range=(15, 25))
        prefixes = {name.split("-")[0] for name, _ in corpus}
        assert prefixes == {"er", "ba", "ws", "soc"}

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            build_corpus(count=0)

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            build_corpus(count=5, size_range=(5, 3))


class TestLabelCorpus:
    def test_labels_and_timings(self):
        corpus = [("k5", complete_graph(5)), ("c6", cycle_graph(6))]
        labelled = label_corpus(corpus, combos=tiny_combos())
        assert len(labelled) == 2
        for entry in labelled:
            assert entry.best in {c.name for c in tiny_combos()}
            assert set(entry.timings) == {c.name for c in tiny_combos()}
            assert all(t >= 0.0 for t in entry.timings.values())

    def test_no_combos_rejected(self):
        with pytest.raises(TrainingError):
            label_corpus([("k3", complete_graph(3))], combos=())

    def test_win_counts_sum(self):
        corpus = [(f"g{i}", complete_graph(4 + i)) for i in range(4)]
        labelled = label_corpus(corpus, combos=tiny_combos())
        counts = win_counts(labelled)
        assert sum(counts.values()) == 4


class TestTrain:
    def test_split_and_accuracy_range(self):
        corpus = build_corpus(count=15, seed=5, size_range=(15, 40))
        labelled = label_corpus(corpus, combos=tiny_combos())
        result = train(labelled, train_fraction=0.8, seed=1)
        assert len(result.training) == 12
        assert len(result.testing) == 3
        assert 0.0 <= result.test_accuracy <= 1.0

    def test_total_test_time_bounded_by_oracle_and_worst(self):
        corpus = build_corpus(count=10, seed=6, size_range=(15, 30))
        labelled = label_corpus(corpus, combos=tiny_combos())
        result = train(labelled, seed=2)
        tree_time = result.total_test_time()
        oracle = sum(min(e.timings.values()) for e in result.testing)
        worst = sum(max(e.timings.values()) for e in result.testing)
        assert oracle - 1e-12 <= tree_time <= worst + 1e-12

    def test_fixed_chooser_uses_named_combo(self):
        corpus = build_corpus(count=10, seed=6, size_range=(15, 30))
        labelled = label_corpus(corpus, combos=tiny_combos())
        result = train(labelled, seed=2)
        name = tiny_combos()[0].name
        expected = sum(e.timings[name] for e in result.testing)
        assert result.total_test_time(name) == expected

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            train([], train_fraction=1.0)

    def test_degenerate_split_rejected(self):
        corpus = [("k3", complete_graph(3))]
        labelled = label_corpus(corpus, combos=tiny_combos())
        with pytest.raises(TrainingError):
            train(labelled, train_fraction=0.5)


class TestSelectionOverhead:
    def test_tree_prediction_is_cheap(self):
        from repro.decision.training import selection_overhead
        from repro.decision.paper_tree import paper_tree

        corpus = build_corpus(count=10, seed=6, size_range=(15, 30))
        labelled = label_corpus(corpus, combos=tiny_combos())
        seconds = selection_overhead(labelled, paper_tree())
        # The selector must be negligible next to enumeration.
        total_enumeration = sum(
            min(e.timings.values()) for e in labelled
        )
        assert seconds < max(total_enumeration, 1e-3)

"""Unit tests for the CART-style tree learner."""

from __future__ import annotations

import pytest

from repro.decision.features import BlockFeatures
from repro.decision.tree import (
    Leaf,
    Split,
    accuracy,
    fit_tree,
    gini,
    majority_label,
    num_leaves,
    prune_tree,
    tree_labels,
)
from repro.errors import TrainingError


def features(nodes=10, edges=10, density=0.1, degeneracy=2, d_star=2):
    return BlockFeatures(
        num_nodes=nodes,
        num_edges=edges,
        density=density,
        degeneracy=degeneracy,
        d_star=d_star,
    )


class TestGini:
    def test_empty(self):
        assert gini([]) == 0.0

    def test_pure(self):
        assert gini(["a", "a", "a"]) == 0.0

    def test_even_binary(self):
        assert gini(["a", "b"]) == pytest.approx(0.5)

    def test_three_way(self):
        assert gini(["a", "b", "c"]) == pytest.approx(2 / 3)


class TestMajority:
    def test_simple(self):
        assert majority_label(["a", "b", "a"]) == "a"

    def test_tie_breaks_lexicographically(self):
        assert majority_label(["b", "a"]) == "a"


class TestLeafAndSplit:
    def test_leaf_predicts_constant(self):
        leaf = Leaf("x")
        assert leaf.predict(features()) == "x"
        assert leaf.depth() == 0

    def test_split_routes(self):
        tree = Split(
            feature="degeneracy",
            threshold=5,
            if_true=Leaf("dense"),
            if_false=Leaf("sparse"),
        )
        assert tree.predict(features(degeneracy=9)) == "dense"
        assert tree.predict(features(degeneracy=5)) == "sparse"
        assert tree.depth() == 1

    def test_split_unknown_feature(self):
        with pytest.raises(TrainingError):
            Split(
                feature="diameter",
                threshold=1,
                if_true=Leaf("a"),
                if_false=Leaf("b"),
            )

    def test_render_mentions_feature(self):
        tree = Split(
            feature="density",
            threshold=0.5,
            if_true=Leaf("a"),
            if_false=Leaf("b"),
        )
        text = tree.render()
        assert "density > 0.5?" in text
        assert "-> a" in text


class TestFit:
    def test_pure_training_set(self):
        tree = fit_tree([features(), features()], ["a", "a"], min_samples=1)
        assert isinstance(tree, Leaf)
        assert tree.label == "a"

    def test_single_split_learned(self):
        samples = [features(degeneracy=d) for d in (1, 2, 3, 50, 60, 70)]
        labels = ["sparse"] * 3 + ["dense"] * 3
        tree = fit_tree(samples, labels, min_samples=1)
        assert accuracy(tree, samples, labels) == 1.0
        assert tree.predict(features(degeneracy=100)) == "dense"
        assert tree.predict(features(degeneracy=0)) == "sparse"

    def test_two_feature_interaction(self):
        # dense+large -> A, dense+small -> B, sparse -> C.
        samples, labels = [], []
        for nodes in (10, 20, 1000, 2000):
            for density in (0.05, 0.9):
                samples.append(features(nodes=nodes, density=density))
                if density < 0.5:
                    labels.append("C")
                elif nodes >= 1000:
                    labels.append("A")
                else:
                    labels.append("B")
        tree = fit_tree(samples, labels, min_samples=1)
        assert accuracy(tree, samples, labels) == 1.0

    def test_max_depth_respected(self):
        samples = [features(degeneracy=d) for d in range(16)]
        labels = [str(d % 4) for d in range(16)]
        tree = fit_tree(samples, labels, max_depth=2, min_samples=1)
        assert tree.depth() <= 2

    def test_min_samples_respected(self):
        samples = [features(degeneracy=d) for d in (1, 100)]
        labels = ["a", "b"]
        tree = fit_tree(samples, labels, min_samples=3)
        assert isinstance(tree, Leaf)

    def test_empty_rejected(self):
        with pytest.raises(TrainingError):
            fit_tree([], [])

    def test_length_mismatch_rejected(self):
        with pytest.raises(TrainingError):
            fit_tree([features()], ["a", "b"])

    def test_uninformative_features_give_leaf(self):
        samples = [features()] * 4
        labels = ["a", "b", "a", "b"]
        tree = fit_tree(samples, labels, min_samples=1)
        assert isinstance(tree, Leaf)
        assert tree.label == "a"


class TestAccuracy:
    def test_empty(self):
        assert accuracy(Leaf("a"), [], []) == 0.0

    def test_half(self):
        tree = Leaf("a")
        assert accuracy(tree, [features(), features()], ["a", "b"]) == 0.5


class TestShape:
    def test_num_leaves(self):
        assert num_leaves(Leaf("a")) == 1
        tree = Split("num_nodes", 10, Leaf("a"), Split("density", 0.5, Leaf("b"), Leaf("c")))
        assert num_leaves(tree) == 3

    def test_tree_labels(self):
        tree = Split("num_nodes", 10, Leaf("a"), Split("density", 0.5, Leaf("b"), Leaf("a")))
        assert tree_labels(tree) == {"a", "b"}


class TestPrune:
    """Cost-complexity pruning against hand-computable costs."""

    def two_leaf(self):
        # nodes > 10 -> "big", else "small"
        return Split("num_nodes", 10, Leaf("big"), Leaf("small"))

    def test_informative_split_survives_alpha_zero(self):
        tree = self.two_leaf()
        samples = [features(nodes=5), features(nodes=50)]
        costs = [
            {"small": 0.0, "big": 3.0},
            {"small": 3.0, "big": 0.0},
        ]
        assert prune_tree(tree, samples, costs, alpha=0.0) == tree

    def test_useless_split_collapses(self):
        # both leaves predict labels the samples price identically
        tree = Split("num_nodes", 10, Leaf("a"), Leaf("a"))
        samples = [features(nodes=5), features(nodes=50)]
        costs = [{"a": 1.0}, {"a": 1.0}]
        assert prune_tree(tree, samples, costs, alpha=0.0) == Leaf("a")

    def test_alpha_buys_a_shallower_tree(self):
        tree = self.two_leaf()
        samples = [features(nodes=5), features(nodes=50)]
        # the split saves only 0.1s; collapsing to "small" costs 0.1s
        costs = [
            {"small": 0.0, "big": 5.0},
            {"small": 0.1, "big": 0.0},
        ]
        assert prune_tree(tree, samples, costs, alpha=0.05) == tree
        pruned = prune_tree(tree, samples, costs, alpha=0.5)
        assert pruned == Leaf("small")

    def test_unpriced_label_costs_the_worst(self):
        # "big" is unpriced: it must inherit the mapping's worst price
        # (9.0), losing to the explicitly cheap "small" on collapse.
        tree = self.two_leaf()
        samples = [features(nodes=5)]
        costs = [{"small": 1.0, "other": 9.0}]
        pruned = prune_tree(tree, samples, costs, alpha=100.0)
        assert pruned == Leaf("small")

    def test_unrouted_subtree_untouched(self):
        tree = self.two_leaf()
        assert prune_tree(tree, [], [], alpha=100.0) == tree

    def test_length_mismatch_rejected(self):
        with pytest.raises(TrainingError, match="cost mappings"):
            prune_tree(Leaf("a"), [features()], [])

    def test_negative_alpha_rejected(self):
        with pytest.raises(TrainingError, match="alpha"):
            prune_tree(Leaf("a"), [], [], alpha=-1.0)

"""Property-based invariants of the CSR-native two-level decomposition.

The CSR path (``cut_csr`` / ``blocks_csr`` / ``induced_csr``) must obey
the same structural guarantees as the dict path, and the two paths must
agree on everything that is invariant to the kernel partition: the
feasible/hub split of every level, the level node/edge counts, and the
final clique sets.  Block *shapes* are allowed to differ — the greedy
growth sees candidates in different orders — which is exactly why these
tests pin partition-invariant quantities and not block memberships.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.blocks import blocks_csr, build_blocks
from repro.core.driver import decompose_only, decompose_only_csr
from repro.core.feasibility import cut, cut_csr
from repro.errors import DecompositionError
from repro.graph.adjacency import Graph
from repro.graph.cores import degeneracy
from repro.graph.csr import CSRGraph, induced_csr
from repro.graph.generators import barabasi_albert, social_network
from repro.graph.views import induced_subgraph


@st.composite
def graphs(draw, max_nodes: int = 14):
    """A random simple graph, possibly with isolated nodes."""
    n = draw(st.integers(min_value=0, max_value=max_nodes))
    edges = []
    for u in range(n):
        for v in range(u + 1, n):
            if draw(st.booleans()):
                edges.append((u, v))
    return Graph(edges=edges, nodes=range(n))


block_sizes = st.integers(min_value=2, max_value=16)


class TestCutCSR:
    @settings(max_examples=60, deadline=None)
    @given(graphs(), block_sizes)
    def test_matches_dict_cut(self, graph, m):
        feasible, hubs = cut(graph, m)
        csr = CSRGraph(graph)
        feasible_ids, hub_ids = cut_csr(csr, m)
        assert {csr.label(int(i)) for i in feasible_ids} == set(feasible)
        assert {csr.label(int(i)) for i in hub_ids} == set(hubs)

    @settings(max_examples=40, deadline=None)
    @given(graphs(), block_sizes)
    def test_partitions_all_nodes(self, graph, m):
        csr = CSRGraph(graph)
        feasible_ids, hub_ids = cut_csr(csr, m)
        merged = np.concatenate([feasible_ids, hub_ids])
        assert sorted(merged.tolist()) == list(range(csr.num_nodes))

    def test_rejects_bad_m(self):
        with pytest.raises(ValueError):
            cut_csr(CSRGraph(Graph(nodes=[0])), 0)


class TestBlocksCSRInvariants:
    @settings(max_examples=60, deadline=None)
    @given(graphs(), block_sizes)
    def test_kernels_partition_feasible_set(self, graph, m):
        csr = CSRGraph(graph)
        feasible_ids, _ = cut_csr(csr, m)
        seen: list[int] = []
        for descriptor in blocks_csr(csr, feasible_ids, m):
            seen.extend(descriptor.kernel_ids.tolist())
        assert sorted(seen) == sorted(feasible_ids.tolist())
        assert len(seen) == len(set(seen))

    @settings(max_examples=60, deadline=None)
    @given(graphs(), block_sizes)
    def test_blocks_contain_full_kernel_neighbourhoods(self, graph, m):
        csr = CSRGraph(graph)
        feasible_ids, _ = cut_csr(csr, m)
        for descriptor in blocks_csr(csr, feasible_ids, m):
            members = set(descriptor.kernel_ids.tolist())
            members.update(descriptor.border_ids.tolist())
            members.update(descriptor.visited_ids.tolist())
            assert len(members) <= m
            for kernel in descriptor.kernel_ids.tolist():
                row = set(csr.neighbor_indices(kernel).tolist())
                assert row <= members

    @settings(max_examples=40, deadline=None)
    @given(graphs(), block_sizes)
    def test_visited_are_earlier_kernels(self, graph, m):
        csr = CSRGraph(graph)
        feasible_ids, _ = cut_csr(csr, m)
        used: set[int] = set()
        for descriptor in blocks_csr(csr, feasible_ids, m):
            visited = descriptor.visited_ids.tolist()
            border = descriptor.border_ids.tolist()
            assert set(visited) <= used
            assert not set(border) & used & set(feasible_ids.tolist())
            assert visited == sorted(visited)
            assert border == sorted(border)
            used.update(descriptor.kernel_ids.tolist())

    def test_oversized_neighbourhood_raises(self):
        # A feasible seed whose closed neighbourhood exceeds m on its own
        # cannot seed any block: the dict path raises the same error.
        star = Graph(edges=[(0, i) for i in range(1, 5)])
        csr = CSRGraph(star)
        feasible_ids = np.arange(csr.num_nodes, dtype=np.int64)
        with pytest.raises(DecompositionError):
            list(blocks_csr(csr, feasible_ids, 3))
        with pytest.raises(DecompositionError):
            build_blocks(star, list(star.nodes()), 3)


class TestHubRecursion:
    @settings(max_examples=60, deadline=None)
    @given(graphs(), block_sizes)
    def test_hub_degrees_never_increase(self, graph, m):
        """Each surviving hub's degree is non-increasing level to level.

        (Strict decrease of the *maximum* hub degree is not universal —
        a hub clique can keep every neighbour for a level — but holds on
        scale-free networks; see ``test_strict_decrease_on_social``.)
        """
        csr = CSRGraph(graph)
        for _ in range(csr.num_nodes + 1):
            feasible_ids, hub_ids = cut_csr(csr, m)
            if not len(feasible_ids) or not len(hub_ids):
                break
            before = {
                csr.label(int(i)): int(d)
                for i, d in zip(hub_ids, csr.degree_array()[hub_ids])
            }
            smaller = induced_csr(csr, hub_ids)
            assert smaller.num_nodes < csr.num_nodes
            after = dict(zip(smaller.labels, smaller.degree_array().tolist()))
            assert set(after) == set(before)
            assert all(after[node] <= before[node] for node in after)
            csr = smaller

    @pytest.mark.parametrize(
        "graph",
        [
            social_network(150, attachment=3, planted_cliques=(6, 5), seed=7),
            social_network(400, attachment=4, closure_probability=0.3, seed=5),
            barabasi_albert(500, 4, seed=1),
        ],
        ids=["social-150", "social-400", "ba-500"],
    )
    def test_strict_decrease_on_social(self, graph):
        m = degeneracy(graph) + 2
        csr = CSRGraph(graph)
        maxima = []
        while csr.num_nodes:
            feasible_ids, hub_ids = cut_csr(csr, m)
            assert len(feasible_ids), "m above degeneracy must converge"
            if not len(hub_ids):
                break
            maxima.append(int(csr.degree_array()[hub_ids].max()))
            csr = induced_csr(csr, hub_ids)
        assert len(maxima) >= 2, "fixture must recurse at least twice"
        assert all(b < a for a, b in zip(maxima, maxima[1:]))


class TestDictVsCSRPinned:
    @settings(max_examples=40, deadline=None)
    @given(graphs(), block_sizes)
    def test_level_stats_pinned(self, graph, m):
        """Node/edge/feasible/hub counts per level agree across paths.

        Block counts may differ (different kernel partitions); the
        feasible/hub split and the residual graphs may not.
        """
        dict_levels, dict_depth = decompose_only(graph, m, fallback="exact")
        csr_levels, csr_depth = decompose_only_csr(graph, m, fallback="exact")
        assert dict_depth == csr_depth
        assert len(dict_levels) == len(csr_levels)
        for ours, theirs in zip(dict_levels, csr_levels):
            assert ours.level == theirs.level
            assert ours.num_nodes == theirs.num_nodes
            assert ours.num_edges == theirs.num_edges
            assert ours.num_feasible == theirs.num_feasible
            assert ours.num_hubs == theirs.num_hubs
            assert ours.fallback_used == theirs.fallback_used


class TestInducedCSR:
    @settings(max_examples=60, deadline=None)
    @given(graphs(), st.data())
    def test_matches_dict_induced_subgraph(self, graph, data):
        csr = CSRGraph(graph)
        keep = sorted(
            data.draw(
                st.sets(
                    st.integers(min_value=0, max_value=max(0, csr.num_nodes - 1)),
                    max_size=csr.num_nodes,
                )
            )
        ) if csr.num_nodes else []
        keep_ids = np.asarray(keep, dtype=np.int64)
        smaller = induced_csr(csr, keep_ids)
        expected = induced_subgraph(graph, [csr.label(int(i)) for i in keep_ids])
        assert smaller.num_nodes == expected.num_nodes
        assert smaller.num_edges == expected.num_edges
        round_trip = smaller.to_graph()
        assert {frozenset(e) for e in round_trip.edges()} == {
            frozenset(e) for e in expected.edges()
        }

    def test_rejects_unsorted_and_out_of_range(self):
        csr = CSRGraph(Graph(edges=[(0, 1), (1, 2)]))
        with pytest.raises(ValueError):
            induced_csr(csr, np.array([1, 0], dtype=np.int64))
        with pytest.raises(ValueError):
            induced_csr(csr, np.array([0, 0], dtype=np.int64))
        with pytest.raises(ValueError):
            induced_csr(csr, np.array([0, 3], dtype=np.int64))

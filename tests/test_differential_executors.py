"""Differential tests: every executor × algorithm × backend agrees.

The harness (``differential.py``) canonicalizes clique output so the
comparisons are order-independent; the serial executor is the reference
everywhere.  Property tests sample random ER/BA/SBM graphs and check
the shared-memory executor against both the serial path and the
networkx oracle.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from conftest import nx_cliques
from differential import (
    DRIVER_MODES,
    EXECUTOR_FACTORIES,
    blocks_of,
    canonical_cliques,
    canonical_report_cliques,
    run_blocks,
    run_driver,
    run_driver_levels,
)
from repro.core.block_analysis import analyze_blocks
from repro.distributed.executor import SharedMemoryExecutor
from repro.graph.generators import (
    barabasi_albert,
    erdos_renyi,
    planted_straggler,
    social_network,
    stochastic_block_model,
)
from repro.mce.registry import ALL_COMBOS

M = 16


@pytest.fixture(scope="module")
def graph():
    return social_network(70, attachment=3, planted_cliques=(6,), seed=11)


@pytest.fixture(scope="module")
def blocks(graph):
    return blocks_of(graph, M)


@pytest.fixture(scope="module")
def references(graph, blocks):
    """Serial reference output per combo (plus the tree default)."""
    refs = {}
    for combo in (None, *ALL_COMBOS):
        cliques, _ = analyze_blocks(blocks, combo=combo)
        refs[combo] = canonical_cliques(cliques)
    return refs


class TestExecutorMatrix:
    """Same blocks, same combo, every executor: identical clique sets."""

    @pytest.mark.parametrize("executor_name", sorted(EXECUTOR_FACTORIES))
    @pytest.mark.parametrize("combo", ALL_COMBOS, ids=lambda c: c.name)
    def test_combo_matrix(self, executor_name, combo, graph, blocks, references):
        assert run_blocks(executor_name, blocks, graph, combo=combo) == references[combo]

    @pytest.mark.parametrize("executor_name", sorted(EXECUTOR_FACTORIES))
    def test_tree_selected_combos(self, executor_name, graph, blocks, references):
        # No forced combo: the decision tree picks per block.
        assert run_blocks(executor_name, blocks, graph) == references[None]


class TestDriverMatrix:
    """Full two-level runs agree with each other and with networkx.

    ``DRIVER_MODES`` crosses the executors with the streaming pipeline
    (``shared-pipeline``), so the CSR-native decompose→dispatch path is
    pinned to the same clique sets as every barrier-mode run.
    """

    @pytest.mark.parametrize("mode", DRIVER_MODES)
    def test_driver_matches_oracle(self, mode, graph):
        assert run_driver(mode, graph, M) == canonical_cliques(
            nx_cliques(graph)
        )

    @pytest.mark.parametrize("combo", ALL_COMBOS, ids=lambda c: c.name)
    def test_pipeline_combo_matrix(self, combo, graph):
        """Pipeline mode agrees with the serial driver on every combo."""
        assert run_driver("shared-pipeline", graph, M, combo=combo) == run_driver(
            "serial", graph, M, combo=combo
        )

    def test_pipeline_levels_match_barrier(self, graph):
        """Per-level clique sets are partition-invariant.

        Block shapes differ between the dict and CSR decompositions
        (their greedy tie-breaks see candidates in different orders),
        but the level at which each clique is found may not.
        """
        barrier = run_driver_levels("shared", graph, M)
        pipeline = run_driver_levels("shared-pipeline", graph, M)
        assert barrier == pipeline


class TestStragglerSplitting:
    """The crafted straggler graph: one dense block among many tiny ones.

    The dense community's block crosses the *adaptive* threshold (no
    forced ``split_threshold=0.0`` here), so these tests pin the whole
    production path — cost-based split decision, subtask dispatch
    through the steal deque, and fragment merging — to the serial
    oracle, clique for clique.
    """

    M = 32

    @pytest.fixture(scope="class")
    def straggler(self):
        return planted_straggler(
            dense_nodes=24, dense_p=0.5, tiny_blocks=12, tiny_size=5, seed=3
        )

    def test_split_blocks_match_serial(self, straggler):
        blocks = blocks_of(straggler, self.M)
        serial = canonical_report_cliques(
            EXECUTOR_FACTORIES["serial"]().map_blocks(blocks, graph=straggler)
        )
        executor = SharedMemoryExecutor(max_workers=2, split=True)
        split = canonical_report_cliques(
            executor.map_blocks(blocks, graph=straggler)
        )
        assert split == serial
        trace = executor.last_trace
        assert trace.splits, "the dense block should cross the adaptive threshold"
        split_ids = set(trace.split_block_ids)
        merged = [t for t in trace.timings if t.block_id in split_ids]
        assert merged and all(t.cliques > 0 for t in merged)
        assert len(trace.subtasks) > len(trace.splits)

    def test_split_driver_matches_oracle(self, straggler):
        assert run_driver("shared-split", straggler, self.M) == canonical_cliques(
            nx_cliques(straggler)
        )

    def test_split_pipeline_matches_serial(self, straggler):
        assert run_driver("shared-pipeline-split", straggler, self.M) == run_driver(
            "serial", straggler, self.M
        )


def _random_graph(family: str, size: int, seed: int):
    if family == "er":
        return erdos_renyi(size, 0.15, seed=seed)
    if family == "ba":
        return barabasi_albert(size, 3, seed=seed)
    sizes = [size // 3, size // 3, size - 2 * (size // 3)]
    return stochastic_block_model(sizes, 0.6, 0.05, seed=seed)


class TestPropertyDifferential:
    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        family=st.sampled_from(["er", "ba", "sbm"]),
        size=st.integers(min_value=18, max_value=42),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_shared_matches_serial_and_oracle(self, family, size, seed):
        graph = _random_graph(family, size, seed)
        m = max(4, graph.max_degree() // 2 + 1)
        blocks = blocks_of(graph, m)
        serial = canonical_report_cliques(
            EXECUTOR_FACTORIES["serial"]().map_blocks(blocks, graph=graph)
        )
        shared = canonical_report_cliques(
            EXECUTOR_FACTORIES["shared"]().map_blocks(blocks, graph=graph)
        )
        assert shared == serial
        oracle = canonical_cliques(nx_cliques(graph))
        driver = run_driver("shared", graph, m)
        assert driver == oracle

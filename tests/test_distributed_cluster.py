"""Unit tests for the cluster topology model."""

from __future__ import annotations

import pytest

from repro.distributed.cluster import ClusterSpec, paper_cluster


class TestClusterSpec:
    def test_total_workers(self):
        spec = ClusterSpec(machines=3, workers_per_machine=4)
        assert spec.total_workers == 12

    def test_machine_of_worker(self):
        spec = ClusterSpec(machines=3, workers_per_machine=4)
        assert spec.machine_of_worker(0) == 0
        assert spec.machine_of_worker(3) == 0
        assert spec.machine_of_worker(4) == 1
        assert spec.machine_of_worker(11) == 2

    def test_machine_of_worker_out_of_range(self):
        spec = ClusterSpec(machines=2, workers_per_machine=2)
        with pytest.raises(ValueError):
            spec.machine_of_worker(4)
        with pytest.raises(ValueError):
            spec.machine_of_worker(-1)

    def test_transfer_cost_linear(self):
        spec = ClusterSpec(
            bandwidth_bytes_per_second=100.0, latency_seconds=0.5
        )
        assert spec.transfer_seconds(0) == pytest.approx(0.5)
        assert spec.transfer_seconds(200) == pytest.approx(2.5)

    def test_transfer_negative_bytes(self):
        with pytest.raises(ValueError):
            ClusterSpec().transfer_seconds(-1)

    @pytest.mark.parametrize(
        "field,value",
        [
            ("machines", 0),
            ("workers_per_machine", 0),
            ("memory_bytes_per_machine", 0),
            ("bandwidth_bytes_per_second", 0.0),
            ("latency_seconds", -1.0),
        ],
    )
    def test_invalid_parameters(self, field, value):
        with pytest.raises(ValueError):
            ClusterSpec(**{field: value})


class TestPaperCluster:
    def test_matches_section_6_1(self):
        spec = paper_cluster()
        assert spec.machines == 10
        assert spec.workers_per_machine == 16
        assert spec.memory_bytes_per_machine == 8 * 1024**3
        assert spec.total_workers == 160

"""Unit tests for the event-driven cluster simulation with failures."""

from __future__ import annotations

import pytest

from repro.distributed.cluster import ClusterSpec
from repro.distributed.events import (
    failure_overhead_curve,
    simulate_events,
)
from repro.distributed.scheduler import Task, schedule_lpt
from repro.errors import SchedulingError


def cluster(workers: int) -> ClusterSpec:
    return ClusterSpec(
        machines=1,
        workers_per_machine=workers,
        latency_seconds=0.0,
        bandwidth_bytes_per_second=1e12,
    )


def tasks(costs: list[float]) -> list[Task]:
    return [Task(task_id=i, cost_seconds=c) for i, c in enumerate(costs)]


class TestWithoutFailures:
    def test_all_tasks_complete_once(self):
        work = tasks([3.0, 1.0, 2.0, 4.0])
        result = simulate_events(work, cluster(2))
        assert result.completed_task_ids() == {0, 1, 2, 3}
        assert len(result.completions) == 4
        assert result.failures == []
        assert result.wasted_seconds == 0.0

    def test_matches_lpt_makespan(self):
        # The pull model with longest-first ordering reproduces greedy
        # LPT exactly when nothing fails.
        work = tasks([5.0, 4.0, 3.0, 3.0, 3.0])
        event = simulate_events(work, cluster(2))
        static = schedule_lpt(work, cluster(2))
        assert event.makespan == pytest.approx(static.makespan)

    def test_empty(self):
        result = simulate_events([], cluster(2))
        assert result.makespan == 0.0
        assert result.completions == []

    def test_single_worker_serialises(self):
        work = tasks([1.0, 2.0, 3.0])
        result = simulate_events(work, cluster(1))
        assert result.makespan == pytest.approx(6.0)

    def test_timeline_non_overlapping_per_worker(self):
        work = tasks([2.0] * 6)
        result = simulate_events(work, cluster(2))
        by_worker: dict[int, list] = {}
        for record in result.completions:
            by_worker.setdefault(record.worker, []).append(record)
        for records in by_worker.values():
            records.sort(key=lambda r: r.started)
            for a, b in zip(records, records[1:]):
                assert a.finished <= b.started + 1e-12


class TestWithFailures:
    def test_every_task_still_completes(self):
        work = tasks([1.0] * 20)
        result = simulate_events(
            work, cluster(4), failure_rate=0.3, seed=7
        )
        assert result.completed_task_ids() == set(range(20))
        assert len(result.completions) == 20

    def test_failures_recorded_and_cost_time(self):
        work = tasks([1.0] * 20)
        clean = simulate_events(work, cluster(4))
        faulty = simulate_events(work, cluster(4), failure_rate=0.4, seed=3)
        assert faulty.failures, "expected some injected failures"
        assert faulty.wasted_seconds > 0.0
        assert faulty.makespan >= clean.makespan

    def test_retry_attempts_increase(self):
        work = tasks([1.0] * 30)
        result = simulate_events(
            work, cluster(4), failure_rate=0.5, seed=1, max_attempts=100
        )
        attempts = {r.task_id: r.attempt for r in result.completions}
        assert max(attempts.values()) >= 2

    def test_deterministic_for_seed(self):
        work = tasks([1.0, 2.0, 3.0] * 5)
        a = simulate_events(work, cluster(3), failure_rate=0.3, seed=9)
        b = simulate_events(work, cluster(3), failure_rate=0.3, seed=9)
        assert a.makespan == b.makespan
        assert len(a.failures) == len(b.failures)

    def test_max_attempts_guard(self):
        work = tasks([1.0])
        with pytest.raises(SchedulingError, match="attempts"):
            simulate_events(
                work, cluster(1), failure_rate=0.99, seed=2, max_attempts=3
            )


class TestValidation:
    def test_duplicate_ids(self):
        bad = [Task(task_id=1, cost_seconds=1.0)] * 2
        with pytest.raises(SchedulingError, match="duplicate"):
            simulate_events(bad, cluster(1))

    def test_invalid_rate(self):
        with pytest.raises(SchedulingError, match="failure_rate"):
            simulate_events([], cluster(1), failure_rate=1.0)


class TestOverheadCurve:
    def test_monotone_failure_counts(self):
        work = tasks([1.0] * 40)
        rows = failure_overhead_curve(
            work, cluster(4), [0.0, 0.2, 0.5], seed=11
        )
        rates = [rate for rate, _, _ in rows]
        counts = [count for _, _, count in rows]
        assert rates == [0.0, 0.2, 0.5]
        assert counts[0] == 0
        assert counts[-1] > counts[1] > 0

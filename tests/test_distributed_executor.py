"""Unit tests for the block executors."""

from __future__ import annotations

import pytest

from repro.core.block_analysis import analyze_blocks
from repro.core.blocks import build_blocks
from repro.core.feasibility import cut
from repro.distributed.cluster import ClusterSpec
from repro.distributed.executor import (
    ProcessExecutor,
    SerialExecutor,
    SimulatedExecutor,
)
from repro.graph.generators import social_network
from repro.mce.registry import Combo


@pytest.fixture(scope="module")
def blocks():
    g = social_network(90, attachment=3, planted_cliques=(7,), seed=6)
    feasible, _ = cut(g, 18)
    return build_blocks(g, feasible, 18)


def clique_multiset(reports):
    return sorted(
        (sorted(map(str, c)) for r in reports for c in r.cliques)
    )


class TestSerialExecutor:
    def test_matches_reference(self, blocks):
        reference, _ = analyze_blocks(blocks)
        reports = SerialExecutor().map_blocks(blocks)
        assert [c for r in reports for c in r.cliques] == reference

    def test_empty(self):
        assert SerialExecutor().map_blocks([]) == []

    def test_forced_combo(self, blocks):
        combo = Combo("tomita", "matrix")
        reports = SerialExecutor().map_blocks(blocks, combo=combo)
        assert all(report.combo == combo for report in reports)


class TestSimulatedExecutor:
    def test_records_run(self, blocks):
        executor = SimulatedExecutor(cluster=ClusterSpec(machines=2))
        reports = executor.map_blocks(blocks)
        assert executor.last_run is not None
        assert executor.last_run.serial_seconds == pytest.approx(
            sum(report.seconds for report in reports)
        )

    def test_same_cliques_as_serial(self, blocks):
        serial = SerialExecutor().map_blocks(blocks)
        simulated = SimulatedExecutor(cluster=ClusterSpec()).map_blocks(blocks)
        assert clique_multiset(serial) == clique_multiset(simulated)


class TestProcessExecutor:
    def test_same_cliques_as_serial(self, blocks):
        serial = SerialExecutor().map_blocks(blocks)
        parallel = ProcessExecutor(max_workers=2).map_blocks(blocks[:6])
        assert clique_multiset(parallel) == clique_multiset(serial[:6])

    def test_empty(self):
        assert ProcessExecutor(max_workers=2).map_blocks([]) == []

"""Unit tests for the sharded data loader."""

from __future__ import annotations

import pytest

from repro.distributed.cluster import ClusterSpec
from repro.distributed.loader import (
    estimated_load_seconds,
    load_shards,
    shard_graph,
)
from repro.errors import FormatError
from repro.graph.adjacency import Graph
from repro.graph.generators import erdos_renyi, social_network


class TestSharding:
    @pytest.mark.parametrize("machines", [1, 3, 10])
    def test_roundtrip(self, tmp_path, machines):
        g = erdos_renyi(40, 0.2, seed=5)
        dataset = shard_graph(g, tmp_path / "shards", machines)
        assert load_shards(dataset) == g

    def test_isolated_nodes_preserved(self, tmp_path):
        g = Graph(edges=[(1, 2)], nodes=[99])
        dataset = shard_graph(g, tmp_path, 4)
        assert load_shards(dataset) == g

    def test_record_count(self, tmp_path):
        g = erdos_renyi(30, 0.25, seed=2)
        dataset = shard_graph(g, tmp_path, 5)
        assert dataset.records == g.num_edges

    def test_shard_files_exist(self, tmp_path):
        g = erdos_renyi(30, 0.25, seed=2)
        dataset = shard_graph(g, tmp_path, 5)
        assert len(dataset.shard_paths()) == 5
        assert all(path.exists() for path in dataset.shard_paths())

    def test_deterministic_placement(self, tmp_path):
        g = erdos_renyi(30, 0.25, seed=3)
        a = shard_graph(g, tmp_path / "a", 4)
        b = shard_graph(g, tmp_path / "b", 4)
        for pa, pb in zip(a.shard_paths(), b.shard_paths()):
            assert pa.read_text() == pb.read_text()

    def test_reasonably_balanced(self, tmp_path):
        g = social_network(500, attachment=3, seed=4)
        dataset = shard_graph(g, tmp_path, 10)
        sizes = [path.stat().st_size for path in dataset.shard_paths()]
        assert max(sizes) < 3 * (sum(sizes) / len(sizes))

    def test_invalid_machines(self, tmp_path):
        with pytest.raises(ValueError):
            shard_graph(Graph(), tmp_path, 0)

    def test_missing_shard_detected(self, tmp_path):
        g = erdos_renyi(20, 0.3, seed=6)
        dataset = shard_graph(g, tmp_path, 3)
        dataset.shard_paths()[1].unlink()
        with pytest.raises(FormatError, match="missing shard"):
            load_shards(dataset)


class TestLoadEstimate:
    def test_positive_and_bounded(self, tmp_path):
        g = erdos_renyi(40, 0.2, seed=7)
        dataset = shard_graph(g, tmp_path, 4)
        cluster = ClusterSpec()
        estimate = estimated_load_seconds(dataset, cluster)
        total_bytes = sum(p.stat().st_size for p in dataset.shard_paths())
        assert 0 < estimate <= cluster.transfer_seconds(total_bytes)

    def test_more_machines_loads_faster_or_equal(self, tmp_path):
        g = social_network(400, attachment=3, seed=8)
        few = shard_graph(g, tmp_path / "few", 2)
        many = shard_graph(g, tmp_path / "many", 10)
        cluster = ClusterSpec()
        assert estimated_load_seconds(many, cluster) <= estimated_load_seconds(
            few, cluster
        )


class TestEstimateEdgeCases:
    def test_missing_shard_counts_as_empty(self, tmp_path):
        g = erdos_renyi(20, 0.3, seed=12)
        dataset = shard_graph(g, tmp_path, 3)
        dataset.shard_paths()[0].unlink()
        # The estimate degrades gracefully (missing shard -> 0 bytes);
        # only load_shards treats it as an error.
        estimate = estimated_load_seconds(dataset, ClusterSpec())
        assert estimate > 0.0

"""Unit tests for the coordinator/worker message protocol."""

from __future__ import annotations

import pytest

from repro.core.block_analysis import analyze_blocks
from repro.core.blocks import build_blocks
from repro.core.feasibility import cut
from repro.distributed.cluster import ClusterSpec
from repro.distributed.protocol import run_protocol_level
from repro.graph.generators import social_network


@pytest.fixture(scope="module")
def blocks():
    g = social_network(100, attachment=3, planted_cliques=(7,), seed=8)
    feasible, _ = cut(g, 20)
    return build_blocks(g, feasible, 20)


@pytest.fixture(scope="module")
def cluster():
    return ClusterSpec(machines=2, workers_per_machine=4)


class TestOutput:
    def test_same_cliques_as_serial(self, blocks, cluster):
        serial, _reports = analyze_blocks(blocks)
        protocol_cliques, _trace = run_protocol_level(blocks, cluster)
        assert set(protocol_cliques) == set(serial)
        assert len(protocol_cliques) == len(serial)

    def test_empty_level(self, cluster):
        cliques, trace = run_protocol_level([], cluster)
        assert cliques == []
        assert trace.messages == []
        assert trace.makespan == 0.0

    def test_deterministic_message_structure(self, blocks, cluster):
        _c1, trace1 = run_protocol_level(blocks, cluster)
        _c2, trace2 = run_protocol_level(blocks, cluster)
        assert [m.task_id for m in trace1.assignments] == [
            m.task_id for m in trace2.assignments
        ]


class TestTrace:
    def test_two_messages_per_block(self, blocks, cluster):
        _cliques, trace = run_protocol_level(blocks, cluster)
        assert len(trace.assignments) == len(blocks)
        assert len(trace.results) == len(blocks)

    def test_timestamps_ordered(self, blocks, cluster):
        _cliques, trace = run_protocol_level(blocks, cluster)
        for message in trace.messages:
            assert message.received_at >= message.sent_at

    def test_result_follows_assignment(self, blocks, cluster):
        _cliques, trace = run_protocol_level(blocks, cluster)
        assigns = {m.task_id: m for m in trace.assignments}
        for result in trace.results:
            assert result.sent_at >= assigns[result.task_id].received_at

    def test_makespan_bounds(self, blocks, cluster):
        _cliques, trace = run_protocol_level(blocks, cluster)
        latest_result = max(m.received_at for m in trace.results)
        assert trace.makespan == pytest.approx(latest_result)
        assert trace.makespan >= max(
            busy for busy in trace.worker_busy_seconds.values()
        )

    def test_bytes_accounted(self, blocks, cluster):
        _cliques, trace = run_protocol_level(blocks, cluster)
        assert trace.total_bytes() > 0
        assert all(m.payload_bytes >= 0 for m in trace.messages)

    def test_workers_within_cluster(self, blocks, cluster):
        _cliques, trace = run_protocol_level(blocks, cluster)
        assert all(
            0 <= m.worker < cluster.total_workers for m in trace.messages
        )

    def test_more_workers_not_slower(self, blocks):
        small = ClusterSpec(machines=1, workers_per_machine=1)
        big = ClusterSpec(machines=4, workers_per_machine=8)
        _c1, trace_small = run_protocol_level(blocks, small)
        _c2, trace_big = run_protocol_level(blocks, big)
        # Timing noise exists (real analyses run twice), so allow slack.
        assert trace_big.makespan <= trace_small.makespan * 1.5

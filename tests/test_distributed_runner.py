"""Unit tests for the end-to-end distributed runner."""

from __future__ import annotations

import warnings

import pytest

from conftest import FIGURE1_CLIQUES, nx_cliques
from repro.core.driver import find_max_cliques
from repro.distributed.cluster import ClusterSpec, paper_cluster
from repro.distributed.executor import SerialExecutor
from repro.distributed.runner import run_distributed
from repro.errors import ConvergenceError
from repro.graph.generators import complete_graph, erdos_renyi, social_network


class TestEquivalenceWithSerialDriver:
    @pytest.mark.parametrize("m", [8, 15, 40])
    def test_same_cliques(self, m):
        g = social_network(130, attachment=3, planted_cliques=(8,), seed=3)
        serial = find_max_cliques(g, m)
        distributed = run_distributed(g, m)
        assert set(distributed.cliques) == set(serial.cliques)
        assert distributed.provenance == serial.provenance

    def test_figure1(self, figure1):
        result = run_distributed(figure1, 5)
        assert set(result.cliques) == FIGURE1_CLIQUES

    def test_matches_networkx(self):
        g = erdos_renyi(35, 0.25, seed=12)
        result = run_distributed(g, 12)
        assert set(result.cliques) == nx_cliques(g)


class TestSimulation:
    def test_runs_recorded_per_level(self):
        g = social_network(130, attachment=3, planted_cliques=(8,), seed=3)
        result = run_distributed(g, 20, cluster=paper_cluster())
        non_fallback_levels = [lvl for lvl in result.levels if not lvl.fallback_used]
        assert len(result.runs) == len(non_fallback_levels)
        assert result.simulated_makespan() > 0.0
        assert result.simulated_speedup() >= 1.0

    def test_custom_executor_no_runs(self):
        g = erdos_renyi(25, 0.25, seed=4)
        result = run_distributed(g, 10, executor=SerialExecutor())
        assert result.runs == []
        assert result.simulated_speedup() == 1.0

    def test_bigger_cluster_not_slower(self):
        g = social_network(130, attachment=3, planted_cliques=(8,), seed=3)
        small = run_distributed(
            g, 20, cluster=ClusterSpec(machines=1, workers_per_machine=1)
        )
        big = run_distributed(g, 20, cluster=paper_cluster())
        assert big.simulated_makespan() <= small.simulated_makespan() * 1.5


class TestGuards:
    def test_convergence_raise(self):
        with pytest.raises(ConvergenceError):
            run_distributed(complete_graph(6), 3, fallback="raise")

    def test_fallback_warns(self):
        with pytest.warns(RuntimeWarning):
            result = run_distributed(complete_graph(6), 3)
        assert result.fallback_used

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            run_distributed(complete_graph(3), 0)


class TestProcessExecutorIntegration:
    def test_process_pool_driver_matches_serial(self):
        from repro.distributed.executor import ProcessExecutor

        g = social_network(80, attachment=3, planted_cliques=(6,), seed=21)
        serial = find_max_cliques(g, 16)
        parallel = run_distributed(
            g, 16, executor=ProcessExecutor(max_workers=2)
        )
        assert set(parallel.cliques) == set(serial.cliques)

"""Unit tests for the scheduling policies."""

from __future__ import annotations

import pytest

from repro.distributed.cluster import ClusterSpec
from repro.distributed.scheduler import (
    StealDeque,
    Task,
    lpt_order,
    schedule_hash,
    schedule_lpt,
    schedule_round_robin,
)
from repro.errors import SchedulingError


def cluster(workers: int) -> ClusterSpec:
    return ClusterSpec(
        machines=1,
        workers_per_machine=workers,
        latency_seconds=0.0,
        bandwidth_bytes_per_second=1e12,
    )


def tasks(costs: list[float]) -> list[Task]:
    return [Task(task_id=i, cost_seconds=c) for i, c in enumerate(costs)]


class TestTask:
    def test_negative_cost(self):
        with pytest.raises(ValueError):
            Task(task_id=0, cost_seconds=-1.0)

    def test_negative_bytes(self):
        with pytest.raises(ValueError):
            Task(task_id=0, cost_seconds=1.0, data_bytes=-1)


class TestLPT:
    def test_balances_equal_tasks(self):
        schedule = schedule_lpt(tasks([1.0] * 8), cluster(4))
        assert schedule.makespan == pytest.approx(2.0)
        assert schedule.skew == pytest.approx(1.0)

    def test_classic_lpt_instance(self):
        # Jobs 5,4,3,3,3 on 2 workers: greedy LPT yields 10 (5+3+... ->
        # loads 8 and 10) while the optimum is 9 — the textbook instance
        # showing LPT's 4/3 bound is not tight from below.
        schedule = schedule_lpt(tasks([5, 4, 3, 3, 3]), cluster(2))
        assert schedule.makespan == pytest.approx(10.0)

    def test_dominant_task_sets_makespan(self):
        schedule = schedule_lpt(tasks([100, 1, 1, 1]), cluster(4))
        assert schedule.makespan == pytest.approx(100.0)
        assert schedule.speedup() == pytest.approx(103 / 100)

    def test_every_task_assigned(self):
        schedule = schedule_lpt(tasks([1, 2, 3, 4, 5]), cluster(3))
        assert set(schedule.assignment) == set(range(5))
        assert all(0 <= w < 3 for w in schedule.assignment.values())

    def test_total_work_conserved(self):
        costs = [3.0, 1.0, 4.0, 1.0, 5.0]
        schedule = schedule_lpt(tasks(costs), cluster(2))
        assert schedule.total_work == pytest.approx(sum(costs))

    def test_duplicate_ids_rejected(self):
        bad = [Task(task_id=1, cost_seconds=1.0)] * 2
        with pytest.raises(SchedulingError):
            schedule_lpt(bad, cluster(2))

    def test_empty(self):
        schedule = schedule_lpt([], cluster(2))
        assert schedule.makespan == 0.0
        assert schedule.speedup() == 1.0

    def test_transfer_cost_included(self):
        spec = ClusterSpec(
            machines=1,
            workers_per_machine=1,
            latency_seconds=1.0,
            bandwidth_bytes_per_second=10.0,
        )
        job = [Task(task_id=0, cost_seconds=2.0, data_bytes=30)]
        schedule = schedule_lpt(job, spec)
        assert schedule.makespan == pytest.approx(2.0 + 1.0 + 3.0)


class TestRoundRobin:
    def test_striping(self):
        schedule = schedule_round_robin(tasks([1, 1, 1, 1]), cluster(2))
        assert schedule.assignment == {0: 0, 1: 1, 2: 0, 3: 1}

    def test_skew_on_sorted_input(self):
        # Round robin on skewed costs is worse than LPT.
        costs = [8.0, 8.0, 1.0, 1.0]
        rr = schedule_round_robin(tasks(costs), cluster(2))
        lpt = schedule_lpt(tasks(costs), cluster(2))
        assert lpt.makespan <= rr.makespan


class TestHash:
    def test_deterministic(self):
        a = schedule_hash(tasks([1, 2, 3]), cluster(4))
        b = schedule_hash(tasks([1, 2, 3]), cluster(4))
        assert a.assignment == b.assignment

    def test_never_better_than_lpt_makespan(self):
        costs = [float(c) for c in (9, 7, 5, 5, 3, 2, 1, 1)]
        hashed = schedule_hash(tasks(costs), cluster(4))
        lpt = schedule_lpt(tasks(costs), cluster(4))
        assert lpt.makespan <= hashed.makespan


class TestLPTOrder:
    def test_decreasing_cost(self):
        order = lpt_order([1.0, 5.0, 3.0])
        assert order == [1, 2, 0]

    def test_ties_break_by_submission_index(self):
        # Equal costs must come out in submission order — split and
        # unsplit runs of the same batch dispatch identically only if
        # the tie-break is pinned.
        order = lpt_order([2.0, 7.0, 2.0, 7.0, 2.0])
        assert order == [1, 3, 0, 2, 4]

    def test_all_equal_is_identity(self):
        assert lpt_order([1.0] * 6) == list(range(6))

    def test_empty(self):
        assert lpt_order([]) == []

    def test_matches_schedule_lpt_on_one_worker(self):
        # On a single worker the dynamic-dispatch order and the static
        # placement visit tasks identically (same sort key).
        costs = [3.0, 1.0, 3.0, 5.0, 1.0]
        order = lpt_order(costs)
        static = sorted(
            tasks(costs), key=lambda t: (-t.cost_seconds, t.task_id)
        )
        assert order == [t.task_id for t in static]


class TestStealDeque:
    def test_initial_tasks_fifo(self):
        dq = StealDeque()
        for item in ("a", "b", "c"):
            dq.push_initial(item)
        assert [dq.take() for _ in range(3)] == ["a", "b", "c"]

    def test_spawned_taken_before_initial(self):
        dq = StealDeque()
        dq.push_initial("block0")
        dq.push_initial("block1")
        dq.push_spawned(["sub0", "sub1"])
        assert [dq.take() for _ in range(4)] == [
            "sub0",
            "sub1",
            "block0",
            "block1",
        ]

    def test_spawned_groups_stack_lifo(self):
        # The most recently split block's subtasks run first, but each
        # group keeps its internal order.
        dq = StealDeque()
        dq.push_spawned(["a1", "a2"])
        dq.push_spawned(["b1", "b2"])
        assert [dq.take() for _ in range(4)] == ["b1", "b2", "a1", "a2"]

    def test_len_and_bool(self):
        dq = StealDeque()
        assert not dq and len(dq) == 0
        dq.push_initial("x")
        assert dq and len(dq) == 1
        dq.take()
        assert not dq

    def test_take_empty_raises(self):
        with pytest.raises(SchedulingError):
            StealDeque().take()


class TestScheduleMetrics:
    def test_skew_idle_cluster(self):
        schedule = schedule_lpt([], cluster(3))
        assert schedule.skew == 0.0

    def test_speedup_upper_bound(self):
        schedule = schedule_lpt(tasks([1.0] * 16), cluster(4))
        assert schedule.speedup() <= 4.0

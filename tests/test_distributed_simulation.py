"""Unit tests for the replay-based cluster simulation."""

from __future__ import annotations

import pytest

from repro.core.block_analysis import analyze_blocks
from repro.core.blocks import build_blocks
from repro.core.feasibility import cut
from repro.distributed.cluster import ClusterSpec
from repro.distributed.simulation import (
    block_bytes,
    scaling_curve,
    simulate_level,
    simulate_reports,
)
from repro.errors import SchedulingError
from repro.graph.generators import social_network


@pytest.fixture(scope="module")
def analyzed():
    g = social_network(120, attachment=3, planted_cliques=(8,), seed=4)
    feasible, _ = cut(g, 20)
    blocks = build_blocks(g, feasible, 20)
    _cliques, reports = analyze_blocks(blocks)
    return blocks, reports


class TestBlockBytes:
    def test_size_model(self, analyzed):
        blocks, _ = analyzed
        block = blocks[0]
        expected = 8 * (block.graph.num_nodes + 2 * block.graph.num_edges)
        assert block_bytes(block) == expected


class TestSimulateLevel:
    def test_makespan_bounds(self, analyzed):
        blocks, reports = analyzed
        cluster = ClusterSpec(machines=4, workers_per_machine=4)
        run = simulate_level(blocks, reports, cluster)
        slowest = max(r.seconds for r in reports)
        assert run.makespan_seconds >= slowest
        assert run.makespan_seconds <= run.serial_seconds + run.communication_seconds
        assert run.speedup >= 1.0

    def test_more_workers_never_slower(self, analyzed):
        blocks, reports = analyzed
        small = simulate_level(
            blocks, reports, ClusterSpec(machines=1, workers_per_machine=2)
        )
        big = simulate_level(
            blocks, reports, ClusterSpec(machines=8, workers_per_machine=8)
        )
        assert big.makespan_seconds <= small.makespan_seconds + 1e-9

    def test_mismatched_inputs(self, analyzed):
        blocks, reports = analyzed
        with pytest.raises(SchedulingError):
            simulate_level(blocks[:-1], reports, ClusterSpec())

    def test_unknown_policy(self, analyzed):
        blocks, reports = analyzed
        with pytest.raises(SchedulingError):
            simulate_level(blocks, reports, ClusterSpec(), policy="fifo")

    def test_policies_agree_on_totals(self, analyzed):
        blocks, reports = analyzed
        cluster = ClusterSpec(machines=2, workers_per_machine=2)
        lpt = simulate_level(blocks, reports, cluster, policy="lpt")
        rr = simulate_level(blocks, reports, cluster, policy="round_robin")
        assert lpt.serial_seconds == pytest.approx(rr.serial_seconds)
        assert lpt.makespan_seconds <= rr.makespan_seconds + 1e-9


class TestSimulateReports:
    def test_close_to_level_simulation(self, analyzed):
        blocks, reports = analyzed
        cluster = ClusterSpec(machines=2, workers_per_machine=4)
        by_level = simulate_level(blocks, reports, cluster)
        by_reports = simulate_reports(reports, cluster)
        # Identical size model -> identical simulation.
        assert by_reports.makespan_seconds == pytest.approx(
            by_level.makespan_seconds
        )

    def test_unknown_policy(self, analyzed):
        _, reports = analyzed
        with pytest.raises(SchedulingError):
            simulate_reports(reports, ClusterSpec(), policy="fifo")


class TestScalingCurve:
    def test_monotone_makespan(self, analyzed):
        _, reports = analyzed
        rows = scaling_curve(reports, [1, 2, 4, 8], workers_per_machine=2)
        makespans = [makespan for _, makespan, _ in rows]
        assert makespans == sorted(makespans, reverse=True) or all(
            abs(a - b) < 1e-9 for a, b in zip(makespans, makespans[1:])
        )

    def test_row_shape(self, analyzed):
        _, reports = analyzed
        rows = scaling_curve(reports, [1, 3])
        assert [machines for machines, _, _ in rows] == [1, 3]
        assert all(speedup >= 1.0 for _, _, speedup in rows)

"""Unit tests for streaming graph partitioning."""

from __future__ import annotations

import pytest

from repro.distributed.streaming import Partition, partition_hash, partition_ldg
from repro.graph.adjacency import Graph
from repro.graph.generators import (
    complete_graph,
    erdos_renyi,
    social_network,
    stochastic_block_model,
)


class TestHashPartition:
    def test_all_nodes_assigned(self):
        g = erdos_renyi(40, 0.2, seed=3)
        partition = partition_hash(g, 4)
        assert set(partition.assignment) == set(g.nodes())
        assert all(0 <= p < 4 for p in partition.assignment.values())

    def test_deterministic(self):
        g = erdos_renyi(40, 0.2, seed=3)
        assert partition_hash(g, 4).assignment == partition_hash(g, 4).assignment

    def test_invalid_parts(self):
        with pytest.raises(ValueError):
            partition_hash(Graph(), 0)


class TestLDGPartition:
    def test_all_nodes_assigned(self):
        g = erdos_renyi(40, 0.2, seed=5)
        partition = partition_ldg(g, 4)
        assert set(partition.assignment) == set(g.nodes())

    def test_balance_respected(self):
        g = social_network(300, attachment=3, seed=7)
        partition = partition_ldg(g, 5, slack=1.1)
        assert max(partition.part_sizes()) <= 1.1 * 300 / 5 + 1

    def test_deterministic(self):
        g = erdos_renyi(40, 0.25, seed=8)
        assert partition_ldg(g, 3).assignment == partition_ldg(g, 3).assignment

    def test_beats_hash_on_clustered_graph(self):
        # The paper's related-work claim: oblivious hashing is the worst
        # placement for clustered/scale-free data.
        g = stochastic_block_model([25, 25, 25, 25], 0.4, 0.01, seed=11)
        ldg = partition_ldg(g, 4)
        hashed = partition_hash(g, 4)
        assert ldg.edge_cut(g) < hashed.edge_cut(g)

    def test_single_part_zero_cut(self):
        g = erdos_renyi(20, 0.3, seed=9)
        partition = partition_ldg(g, 1)
        assert partition.edge_cut(g) == 0.0
        assert partition.balance() == 1.0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            partition_ldg(Graph(), 0)
        with pytest.raises(ValueError):
            partition_ldg(Graph(), 2, slack=0.5)


class TestPartitionMetrics:
    def test_edge_cut_bounds(self):
        g = complete_graph(10)
        partition = partition_ldg(g, 2)
        assert 0.0 <= partition.edge_cut(g) <= 1.0

    def test_edge_cut_empty_graph(self):
        partition = Partition(assignment={}, parts=2)
        assert partition.edge_cut(Graph()) == 0.0

    def test_balance_empty(self):
        assert Partition(assignment={}, parts=3).balance() == 0.0

    def test_part_sizes_sum(self):
        g = erdos_renyi(30, 0.2, seed=10)
        partition = partition_ldg(g, 4)
        assert sum(partition.part_sizes()) == 30

"""Unit tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro.errors import (
    AlgorithmNotFoundError,
    ConvergenceError,
    DecompositionError,
    FormatError,
    GraphError,
    NodeNotFoundError,
    ReproError,
    SchedulingError,
    SelfLoopError,
    TrainingError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            GraphError("x"),
            NodeNotFoundError(1),
            SelfLoopError(1),
            FormatError("x"),
            ConvergenceError("x", core_size=3),
            DecompositionError("x"),
            AlgorithmNotFoundError("x", ("a",)),
            TrainingError("x"),
            SchedulingError("x"),
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert isinstance(exc, ReproError)

    def test_node_not_found_is_key_error(self):
        assert isinstance(NodeNotFoundError(1), KeyError)

    def test_format_error_is_value_error(self):
        assert isinstance(FormatError("x"), ValueError)


class TestMessages:
    def test_node_not_found_message(self):
        assert "not in the graph" in str(NodeNotFoundError("v7"))
        assert "v7" in str(NodeNotFoundError("v7"))

    def test_self_loop_message(self):
        assert "self-loop" in str(SelfLoopError(3))

    def test_convergence_carries_core_size(self):
        exc = ConvergenceError("stuck", core_size=42)
        assert exc.core_size == 42

    def test_algorithm_not_found_lists_options(self):
        exc = AlgorithmNotFoundError("foo", ("tomita", "bkpivot"))
        assert "foo" in str(exc)
        assert "bkpivot" in str(exc)
        assert "tomita" in str(exc)

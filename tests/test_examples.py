"""Smoke-run every example script so the examples cannot rot.

Each example is executed as a subprocess with a bounded runtime; the
slow ones take a size argument to stay quick under test.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

pytestmark = pytest.mark.slow

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"

# script -> (argv suffix, expected stdout fragment)
EXAMPLES = {
    "quickstart.py": ([], "maximal cliques"),
    "community_detection.py": ([], "communities"),
    "hub_analysis.py": ([], "naive"),
    "file_pipeline.py": ([], "wrote"),
    "evolving_network.py": ([], "incremental maintenance"),
    "scalability_sweep.py": (["google+"], "speed-up"),
    "reproduce_paper.py": (["google+"], "Figure 11"),
    "train_selector.py": (["10"], "test accuracy"),
}


@pytest.mark.parametrize("script", sorted(EXAMPLES))
def test_example_runs(script, tmp_path):
    args, expected = EXAMPLES[script]
    if script == "file_pipeline.py":
        args = [str(tmp_path)]
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert expected in completed.stdout


def test_every_example_is_covered():
    on_disk = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(EXAMPLES), (
        "examples changed on disk; update the smoke map"
    )

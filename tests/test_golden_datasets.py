"""Golden regression values for the five data-set stand-ins.

Everything in the library is seeded and deterministic, so the exact
clique statistics of each stand-in are stable across runs and
platforms.  These tests pin them: any change to the generators, the
decomposition, or the MCE portfolio that alters an output will trip a
golden value and force a conscious recalibration (EXPERIMENTS.md
records the same numbers).
"""

from __future__ import annotations

import pytest

from repro.core.driver import find_max_cliques
from repro.graph.datasets import load_dataset

# dataset -> (nodes, edges, max_degree, num_cliques, max_clique_size)
GOLDEN = {
    "twitter1": (2900, 12951, 345, 7545, 27),
    "twitter2": (2800, 18615, 361, 12945, 31),
    "twitter3": (3200, 28461, 401, 37764, 33),
    "facebook": (2300, 19458, 348, 19978, 21),
    "google+": (2100, 12477, 233, 8159, 18),
}


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_dataset_shape_is_pinned(name):
    nodes, edges, max_degree, _cliques, _max_size = GOLDEN[name]
    graph = load_dataset(name)
    assert graph.num_nodes == nodes
    assert graph.num_edges == edges
    assert graph.max_degree() == max_degree


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_dataset_cliques_are_pinned(name):
    _nodes, _edges, max_degree, num_cliques, max_size = GOLDEN[name]
    graph = load_dataset(name)
    result = find_max_cliques(graph, max(2, max_degree // 2))
    assert result.num_cliques == num_cliques
    assert result.max_clique_size() == max_size
    assert not result.fallback_used

"""Golden regression: frozen fixtures for the five dataset stand-ins.

``tests/golden/<name>.json`` freezes the clique counts, maximum clique
sizes, clique-size histograms, and block/recursion statistics of each
calibrated stand-in (regenerate deliberately with
``python tests/golden/regenerate.py``).  Unlike the spot checks in
``test_golden_datasets.py``, these fixtures pin the *full shape* of
each run, so performance work on the executors or the decomposition
cannot silently drop or fabricate cliques, merge blocks, or change
recursion depth without tripping a diff here.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from golden.regenerate import golden_record
from repro.graph.datasets import DATASET_NAMES

GOLDEN_DIR = Path(__file__).parent / "golden"


def fixture_path(name: str) -> Path:
    return GOLDEN_DIR / f"{name.replace('+', 'plus')}.json"


@pytest.mark.parametrize("name", sorted(DATASET_NAMES))
def test_every_dataset_has_a_fixture(name):
    assert fixture_path(name).is_file(), (
        f"missing golden fixture for {name!r}; run "
        "PYTHONPATH=src python tests/golden/regenerate.py"
    )


@pytest.mark.parametrize("name", sorted(DATASET_NAMES))
def test_golden_regression(name):
    frozen = json.loads(fixture_path(name).read_text())
    current = golden_record(name)
    for section in ("graph", "cliques", "recursion", "blocks"):
        assert current[section] == frozen[section], (
            f"{name}: golden section {section!r} drifted; if the change is "
            "deliberate, regenerate tests/golden/ and record why"
        )
    assert current["m"] == frozen["m"]

"""Unit tests for the core Graph container."""

from __future__ import annotations

import pytest

from repro.errors import NodeNotFoundError, SelfLoopError
from repro.graph.adjacency import Graph


class TestConstruction:
    def test_empty(self):
        g = Graph()
        assert g.num_nodes == 0
        assert g.num_edges == 0

    def test_from_edges(self):
        g = Graph(edges=[(1, 2), (2, 3)])
        assert g.num_nodes == 3
        assert g.num_edges == 2

    def test_from_nodes(self):
        g = Graph(nodes=[1, 2, 3])
        assert g.num_nodes == 3
        assert g.num_edges == 0

    def test_nodes_before_edges(self):
        g = Graph(edges=[(2, 3)], nodes=[1])
        assert list(g.nodes()) == [1, 2, 3]

    def test_string_labels(self):
        g = Graph(edges=[("a", "b")])
        assert g.has_edge("a", "b")

    def test_tuple_labels(self):
        g = Graph(edges=[((0, "x"), (1, "y"))])
        assert g.has_node((0, "x"))


class TestMutation:
    def test_add_node_idempotent(self):
        g = Graph()
        g.add_node(1)
        g.add_node(1)
        assert g.num_nodes == 1

    def test_add_edge_creates_endpoints(self):
        g = Graph()
        g.add_edge(1, 2)
        assert g.has_node(1) and g.has_node(2)

    def test_add_edge_idempotent(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(1, 2)
        g.add_edge(2, 1)
        assert g.num_edges == 1

    def test_self_loop_rejected(self):
        g = Graph()
        with pytest.raises(SelfLoopError):
            g.add_edge(1, 1)

    def test_self_loop_in_constructor_rejected(self):
        with pytest.raises(SelfLoopError):
            Graph(edges=[(1, 1)])

    def test_add_edges(self):
        g = Graph()
        g.add_edges([(1, 2), (2, 3)])
        assert g.num_edges == 2

    def test_add_clique(self):
        g = Graph()
        g.add_clique([1, 2, 3, 4])
        assert g.num_edges == 6
        assert g.is_clique([1, 2, 3, 4])

    def test_add_clique_with_duplicates(self):
        g = Graph()
        g.add_clique([1, 2, 2, 3])
        assert g.num_edges == 3

    def test_add_clique_over_existing_edges(self):
        g = Graph(edges=[(1, 2)])
        g.add_clique([1, 2, 3])
        assert g.num_edges == 3

    def test_remove_node(self):
        g = Graph(edges=[(1, 2), (2, 3)])
        g.remove_node(2)
        assert not g.has_node(2)
        assert g.num_edges == 0
        assert g.num_nodes == 2

    def test_remove_node_missing(self):
        g = Graph()
        with pytest.raises(NodeNotFoundError):
            g.remove_node(9)

    def test_remove_edge(self):
        g = Graph(edges=[(1, 2), (2, 3)])
        g.remove_edge(1, 2)
        assert not g.has_edge(1, 2)
        assert g.num_edges == 1
        assert g.has_node(1)

    def test_remove_edge_idempotent(self):
        g = Graph(edges=[(1, 2)])
        g.remove_edge(1, 2)
        g.remove_edge(1, 2)
        assert g.num_edges == 0

    def test_remove_edge_missing_endpoint(self):
        g = Graph(edges=[(1, 2)])
        with pytest.raises(NodeNotFoundError):
            g.remove_edge(1, 9)


class TestInspection:
    def test_neighbors(self):
        g = Graph(edges=[(1, 2), (1, 3)])
        assert g.neighbors(1) == frozenset({2, 3})

    def test_neighbors_missing(self):
        g = Graph()
        with pytest.raises(NodeNotFoundError):
            g.neighbors(1)

    def test_neighbors_snapshot_immutable(self):
        g = Graph(edges=[(1, 2)])
        snapshot = g.neighbors(1)
        g.add_edge(1, 3)
        assert snapshot == frozenset({2})

    def test_degree(self):
        g = Graph(edges=[(1, 2), (1, 3), (1, 4)])
        assert g.degree(1) == 3
        assert g.degree(2) == 1

    def test_degree_missing(self):
        g = Graph()
        with pytest.raises(NodeNotFoundError):
            g.degree(7)

    def test_edges_each_once(self):
        g = Graph(edges=[(1, 2), (2, 3), (1, 3)])
        edges = list(g.edges())
        assert len(edges) == 3
        normalized = {frozenset(e) for e in edges}
        assert normalized == {
            frozenset({1, 2}),
            frozenset({2, 3}),
            frozenset({1, 3}),
        }

    def test_node_insertion_order(self):
        g = Graph(edges=[(3, 1), (2, 5)])
        assert list(g.nodes()) == [3, 1, 2, 5]

    def test_closed_neighborhood(self):
        g = Graph(edges=[(1, 2), (1, 3)])
        assert g.closed_neighborhood(1) == frozenset({1, 2, 3})
        assert g.closed_neighborhood(2) == frozenset({1, 2})

    def test_neighborhood_of_set(self):
        g = Graph(edges=[(1, 2), (2, 3), (3, 4)])
        assert g.neighborhood_of_set([1, 2]) == frozenset({1, 2, 3})
        assert g.neighborhood_of_set([2, 3]) == frozenset({1, 2, 3, 4})

    def test_neighborhood_of_set_missing_node(self):
        g = Graph(edges=[(1, 2)])
        with pytest.raises(NodeNotFoundError):
            g.neighborhood_of_set([1, 9])

    def test_max_degree(self):
        g = Graph(edges=[(1, 2), (1, 3), (4, 5)])
        assert g.max_degree() == 2

    def test_max_degree_empty(self):
        assert Graph().max_degree() == 0

    def test_density_complete(self):
        g = Graph()
        g.add_clique([1, 2, 3, 4])
        assert g.density() == pytest.approx(1.0)

    def test_density_empty_graph(self):
        assert Graph().density() == 0.0
        assert Graph(nodes=[1]).density() == 0.0

    def test_density_half(self):
        g = Graph(edges=[(1, 2), (2, 3), (3, 4)])
        assert g.density() == pytest.approx(0.5)

    def test_is_clique(self):
        g = Graph(edges=[(1, 2), (2, 3), (1, 3), (3, 4)])
        assert g.is_clique([1, 2, 3])
        assert not g.is_clique([1, 2, 3, 4])
        assert g.is_clique([3, 4])

    def test_is_clique_trivial(self):
        g = Graph(nodes=[1])
        assert g.is_clique([])
        assert g.is_clique([1])

    def test_is_clique_missing_node(self):
        g = Graph(nodes=[1])
        with pytest.raises(NodeNotFoundError):
            g.is_clique([1, 2])


class TestDunders:
    def test_contains(self):
        g = Graph(nodes=[1])
        assert 1 in g
        assert 2 not in g

    def test_iter_and_len(self):
        g = Graph(nodes=[1, 2, 3])
        assert list(g) == [1, 2, 3]
        assert len(g) == 3

    def test_equality(self):
        a = Graph(edges=[(1, 2), (2, 3)])
        b = Graph(edges=[(2, 3), (1, 2)])
        assert a == b

    def test_inequality_edges(self):
        a = Graph(edges=[(1, 2)])
        b = Graph(nodes=[1, 2])
        assert a != b

    def test_inequality_nodes(self):
        assert Graph(nodes=[1]) != Graph(nodes=[2])

    def test_equality_other_type(self):
        assert Graph() != 42

    def test_repr(self):
        g = Graph(edges=[(1, 2)])
        assert "num_nodes=2" in repr(g)
        assert "num_edges=1" in repr(g)


class TestCopy:
    def test_copy_independent(self):
        g = Graph(edges=[(1, 2)])
        clone = g.copy()
        clone.add_edge(2, 3)
        assert g.num_nodes == 2
        assert clone.num_nodes == 3

    def test_copy_equal(self):
        g = Graph(edges=[(1, 2), (3, 4)])
        assert g.copy() == g

    def test_adjacency_snapshot(self):
        g = Graph(edges=[(1, 2)])
        adj = g.adjacency()
        assert adj == {1: frozenset({2}), 2: frozenset({1})}

"""Unit tests for core decomposition, degeneracy, and peeling."""

from __future__ import annotations

import pytest

from repro.graph.adjacency import Graph
from repro.graph.cores import (
    core_numbers,
    degeneracy,
    degeneracy_ordering,
    k_core,
    peel_iterations,
)
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi,
    h_n,
    star_graph,
)


class TestCoreNumbers:
    def test_empty(self):
        assert core_numbers(Graph()) == {}

    def test_isolated(self):
        assert core_numbers(Graph(nodes=[1, 2])) == {1: 0, 2: 0}

    def test_complete(self):
        numbers = core_numbers(complete_graph(5))
        assert all(value == 4 for value in numbers.values())

    def test_cycle(self):
        numbers = core_numbers(cycle_graph(6))
        assert all(value == 2 for value in numbers.values())

    def test_star(self):
        numbers = core_numbers(star_graph(5))
        assert numbers[0] == 1
        assert all(numbers[leaf] == 1 for leaf in range(1, 6))

    def test_path(self):
        numbers = core_numbers(Graph(edges=[(0, 1), (1, 2), (2, 3)]))
        assert set(numbers.values()) == {1}

    def test_triangle_with_pendant(self):
        g = Graph(edges=[(0, 1), (1, 2), (0, 2), (2, 3)])
        numbers = core_numbers(g)
        assert numbers[3] == 1
        assert numbers[0] == numbers[1] == numbers[2] == 2

    def test_matches_networkx(self):
        import networkx as nx

        g = erdos_renyi(60, 0.15, seed=11)
        mirror = nx.Graph()
        mirror.add_nodes_from(g.nodes())
        mirror.add_edges_from(g.edges())
        assert core_numbers(g) == nx.core_number(mirror)


class TestDegeneracy:
    def test_empty(self):
        assert degeneracy(Graph()) == 0

    def test_complete(self):
        assert degeneracy(complete_graph(7)) == 6

    def test_cycle(self):
        assert degeneracy(cycle_graph(10)) == 2

    def test_tree(self):
        g = Graph(edges=[(0, 1), (0, 2), (1, 3), (1, 4)])
        assert degeneracy(g) == 1

    def test_h_n_bounded_by_m(self):
        # Theorem 1's pathological graph is built to have degeneracy <= m.
        for m in (2, 3, 5):
            assert degeneracy(h_n(25, m)) <= m


class TestDegeneracyOrdering:
    def test_is_permutation(self):
        g = erdos_renyi(30, 0.2, seed=3)
        order = degeneracy_ordering(g)
        assert sorted(order, key=str) == sorted(g.nodes(), key=str)

    def test_later_neighbors_bounded(self):
        # Defining property: each node has at most `degeneracy` neighbours
        # appearing later in the ordering.
        g = erdos_renyi(40, 0.2, seed=9)
        d = degeneracy(g)
        order = degeneracy_ordering(g)
        position = {node: i for i, node in enumerate(order)}
        for node in order:
            later = sum(
                1 for other in g.neighbors(node) if position[other] > position[node]
            )
            assert later <= d

    def test_empty(self):
        assert degeneracy_ordering(Graph()) == []

    def test_deterministic(self):
        g = erdos_renyi(30, 0.25, seed=4)
        assert degeneracy_ordering(g) == degeneracy_ordering(g)


class TestKCore:
    def test_zero_core_is_everything(self):
        g = Graph(nodes=[1, 2, 3])
        assert k_core(g, 0) == frozenset({1, 2, 3})

    def test_complete_graph_cores(self):
        g = complete_graph(5)
        assert k_core(g, 4) == frozenset(range(5))
        assert k_core(g, 5) == frozenset()

    def test_pendant_excluded(self):
        g = Graph(edges=[(0, 1), (1, 2), (0, 2), (2, 3)])
        assert k_core(g, 2) == frozenset({0, 1, 2})

    def test_empty_above_degeneracy(self):
        g = erdos_renyi(30, 0.2, seed=5)
        assert k_core(g, degeneracy(g) + 1) == frozenset()

    def test_nonempty_at_degeneracy(self):
        g = erdos_renyi(30, 0.2, seed=5)
        assert k_core(g, degeneracy(g)) != frozenset()


class TestPeelIterations:
    def test_empty(self):
        assert peel_iterations(Graph(), 3) == 0

    def test_one_round_when_all_low(self):
        assert peel_iterations(cycle_graph(6), 3) == 1

    def test_stuck_on_core(self):
        # threshold <= degeneracy: nothing peels on the core; returns the
        # rounds until the fixpoint.
        g = complete_graph(5)
        assert peel_iterations(g, 3) == 0

    def test_h_n_linear_rounds(self):
        # Theorem 1 statement 2: H_n requires Omega(n) rounds.
        m = 4
        for n in (10, 20, 30):
            g = h_n(n, m)
            rounds = peel_iterations(g, m + 1)
            assert rounds >= n - (m + 2)

    def test_star_two_rounds(self):
        # Leaves go first, then the hub.
        assert peel_iterations(star_graph(10), 2) == 2

"""Unit tests for the CSR graph snapshot."""

from __future__ import annotations

import pytest

from repro.errors import NodeNotFoundError
from repro.graph.adjacency import Graph
from repro.graph.csr import CSRGraph
from repro.graph.generators import complete_graph, erdos_renyi, star_graph


class TestRoundTrip:
    @pytest.mark.parametrize("seed", range(4))
    def test_random_graphs(self, seed):
        g = erdos_renyi(30, 0.2, seed=seed)
        assert CSRGraph(g).to_graph() == g

    def test_isolated_nodes_preserved(self):
        g = Graph(edges=[(1, 2)], nodes=[9])
        assert CSRGraph(g).to_graph() == g

    def test_empty(self):
        csr = CSRGraph(Graph())
        assert csr.num_nodes == 0
        assert csr.num_edges == 0
        assert csr.to_graph() == Graph()


class TestQueries:
    def test_counts(self):
        csr = CSRGraph(complete_graph(5))
        assert csr.num_nodes == 5
        assert csr.num_edges == 10

    def test_degree(self):
        csr = CSRGraph(star_graph(6))
        assert csr.degree(0) == 6
        assert csr.degree(1) == 1

    def test_neighbors_sorted_indices(self):
        g = Graph(edges=[(0, 3), (0, 1), (0, 2)])
        csr = CSRGraph(g)
        row = list(csr.neighbor_indices(csr.index_of(0)))
        assert row == sorted(row)

    def test_neighbors_labels(self):
        g = Graph(edges=[("a", "b"), ("a", "c")])
        csr = CSRGraph(g)
        assert set(csr.neighbors("a")) == {"b", "c"}

    def test_has_edge(self):
        g = erdos_renyi(25, 0.3, seed=7)
        csr = CSRGraph(g)
        for u in g.nodes():
            for v in g.nodes():
                if u != v:
                    assert csr.has_edge(u, v) == g.has_edge(u, v)

    def test_unknown_node(self):
        csr = CSRGraph(Graph(nodes=[1]))
        with pytest.raises(NodeNotFoundError):
            csr.degree(99)

    def test_memory_bytes_positive(self):
        csr = CSRGraph(complete_graph(10))
        assert csr.memory_bytes() == (11 + 90) * 8

    def test_repr(self):
        assert "num_nodes=3" in repr(CSRGraph(complete_graph(3)))

    def test_label_index_roundtrip(self):
        g = Graph(nodes=["x", "y"])
        csr = CSRGraph(g)
        for node in g.nodes():
            assert csr.label(csr.index_of(node)) == node

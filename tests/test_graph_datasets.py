"""Unit tests for the calibrated data-set stand-ins."""

from __future__ import annotations

import pytest

from repro.graph.cores import degeneracy
from repro.graph.datasets import DATASET_NAMES, DATASETS, load_all, load_dataset
from repro.graph.properties import fraction_with_degree_at_most


class TestCatalogue:
    def test_five_datasets(self):
        assert len(DATASET_NAMES) == 5
        assert set(DATASET_NAMES) == {
            "twitter1",
            "twitter2",
            "twitter3",
            "facebook",
            "google+",
        }

    def test_paper_statistics_recorded(self):
        # Table 3 of the paper, verbatim.
        assert DATASETS["twitter1"].paper_nodes == 2_919_613
        assert DATASETS["twitter3"].paper_edges == 476_553_560
        assert DATASETS["facebook"].paper_max_degree == 2_621_960
        assert DATASETS["google+"].paper_max_clique == 18

    def test_scale_is_small(self):
        for spec in DATASETS.values():
            assert spec.scale < 0.01

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            load_dataset("orkut")


class TestBuiltGraphs:
    def test_deterministic(self):
        assert load_dataset("twitter1") == load_dataset("twitter1")

    def test_seed_override(self):
        assert load_dataset("twitter1", seed=1) != load_dataset("twitter1", seed=2)

    def test_node_counts(self):
        for name, spec in DATASETS.items():
            graph = spec.build()
            assert graph.num_nodes == spec.nodes, name

    def test_load_all(self):
        graphs = load_all()
        assert set(graphs) == set(DATASET_NAMES)

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_hubs_dominate_degeneracy(self, name):
        # The m/d sweep of Section 6 needs 0.1 * max_degree to exceed the
        # degeneracy so the first-level recursion converges at every ratio.
        graph = load_dataset(name)
        assert 0.1 * graph.max_degree() > degeneracy(graph)

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_mostly_low_degree(self, name):
        # Figure 6 prose: ~91% of nodes have degree in [1, 20] on average.
        graph = load_dataset(name)
        assert fraction_with_degree_at_most(graph, 20) > 0.75

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_planted_max_clique_size_is_feasible(self, name):
        # The largest planted clique forces degeneracy >= size - 1.
        spec = DATASETS[name]
        graph = spec.build()
        assert degeneracy(graph) >= max(spec.planted_cliques) - 1

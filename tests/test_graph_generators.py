"""Unit tests for the seeded graph generators."""

from __future__ import annotations

import pytest

from repro.graph.adjacency import Graph
from repro.graph.cores import degeneracy
from repro.graph.generators import (
    barabasi_albert,
    complete_graph,
    cycle_graph,
    disjoint_union,
    erdos_renyi,
    h_n,
    social_network,
    star_graph,
    watts_strogatz,
)


class TestFixedShapes:
    def test_complete(self):
        g = complete_graph(5)
        assert g.num_nodes == 5
        assert g.num_edges == 10

    def test_complete_zero(self):
        assert complete_graph(0).num_nodes == 0

    def test_complete_negative(self):
        with pytest.raises(ValueError):
            complete_graph(-1)

    def test_cycle(self):
        g = cycle_graph(6)
        assert g.num_edges == 6
        assert all(g.degree(n) == 2 for n in g.nodes())

    def test_cycle_two_nodes(self):
        g = cycle_graph(2)
        assert g.num_edges == 1

    def test_cycle_one_node(self):
        g = cycle_graph(1)
        assert g.num_nodes == 1
        assert g.num_edges == 0

    def test_star(self):
        g = star_graph(4)
        assert g.degree(0) == 4
        assert g.num_edges == 4


class TestErdosRenyi:
    def test_p_zero(self):
        g = erdos_renyi(20, 0.0, seed=1)
        assert g.num_edges == 0
        assert g.num_nodes == 20

    def test_p_one(self):
        g = erdos_renyi(6, 1.0, seed=1)
        assert g.num_edges == 15

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            erdos_renyi(10, 1.5)

    def test_negative_n(self):
        with pytest.raises(ValueError):
            erdos_renyi(-1, 0.5)

    def test_deterministic(self):
        assert erdos_renyi(40, 0.2, seed=9) == erdos_renyi(40, 0.2, seed=9)

    def test_seed_changes_graph(self):
        assert erdos_renyi(40, 0.2, seed=1) != erdos_renyi(40, 0.2, seed=2)

    def test_expected_edge_count(self):
        n, p = 200, 0.1
        g = erdos_renyi(n, p, seed=42)
        expected = p * n * (n - 1) / 2
        assert abs(g.num_edges - expected) < 0.25 * expected


class TestBarabasiAlbert:
    def test_node_and_edge_counts(self):
        n, m = 50, 3
        g = barabasi_albert(n, m, seed=0)
        assert g.num_nodes == n
        # m edges per new node after the initial star of m edges.
        assert g.num_edges == m + (n - m - 1) * m

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            barabasi_albert(10, 0)

    def test_n_too_small(self):
        with pytest.raises(ValueError):
            barabasi_albert(3, 3)

    def test_deterministic(self):
        assert barabasi_albert(60, 2, seed=5) == barabasi_albert(60, 2, seed=5)

    def test_has_hubs(self):
        g = barabasi_albert(500, 3, seed=1)
        assert g.max_degree() > 20

    def test_attached_nodes_have_degree_at_least_m(self):
        # Nodes added after the initial star attach to m distinct targets.
        m = 4
        g = barabasi_albert(100, m, seed=2)
        assert all(g.degree(n) >= m for n in range(m + 1, 100))


class TestWattsStrogatz:
    def test_degree_regular_without_rewiring(self):
        g = watts_strogatz(20, 4, 0.0, seed=1)
        assert all(g.degree(n) == 4 for n in g.nodes())

    def test_edge_count_preserved(self):
        g = watts_strogatz(30, 6, 0.5, seed=2)
        assert g.num_edges == 30 * 3

    def test_odd_k_rejected(self):
        with pytest.raises(ValueError):
            watts_strogatz(10, 3, 0.1)

    def test_n_not_greater_than_k(self):
        with pytest.raises(ValueError):
            watts_strogatz(4, 4, 0.1)

    def test_invalid_beta(self):
        with pytest.raises(ValueError):
            watts_strogatz(10, 4, -0.1)

    def test_deterministic(self):
        assert watts_strogatz(25, 4, 0.3, seed=7) == watts_strogatz(
            25, 4, 0.3, seed=7
        )


class TestSocialNetwork:
    def test_basic(self):
        g = social_network(100, attachment=3, seed=1)
        assert g.num_nodes == 100

    def test_planted_clique_present(self):
        g = social_network(80, attachment=2, planted_cliques=(9,), seed=3)
        # A 9-clique forces degeneracy at least 8.
        assert degeneracy(g) >= 8

    def test_planted_too_large(self):
        with pytest.raises(ValueError):
            social_network(10, attachment=2, planted_cliques=(11,), seed=0)

    def test_planted_too_small(self):
        with pytest.raises(ValueError):
            social_network(10, attachment=2, planted_cliques=(1,), seed=0)

    def test_invalid_closure(self):
        with pytest.raises(ValueError):
            social_network(10, attachment=2, closure_probability=2.0)

    def test_deterministic(self):
        a = social_network(90, attachment=3, planted_cliques=(6,), seed=11)
        b = social_network(90, attachment=3, planted_cliques=(6,), seed=11)
        assert a == b

    def test_closure_raises_clustering(self):
        flat = social_network(300, attachment=3, closure_probability=0.0, seed=5)
        closed = social_network(300, attachment=3, closure_probability=0.9, seed=5)
        assert closed.num_edges > flat.num_edges


class TestHn:
    def test_small_is_complete(self):
        # For n <= m + 1, H_n is the complete graph.
        g = h_n(4, 5)
        assert g.num_edges == 6

    def test_new_node_degree_m(self):
        # Proof property (a): v_j has degree m in H_j for j > m + 1.
        m = 4
        g = h_n(12, m)
        assert g.degree(12) == m

    def test_degeneracy_at_most_m(self):
        for m in (2, 4):
            assert degeneracy(h_n(30, m)) <= m

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            h_n(0, 3)
        with pytest.raises(ValueError):
            h_n(5, 0)

    def test_node_labels(self):
        g = h_n(7, 3)
        assert set(g.nodes()) == set(range(1, 8))


class TestDisjointUnion:
    def test_counts(self):
        u = disjoint_union([complete_graph(3), cycle_graph(4)])
        assert u.num_nodes == 7
        assert u.num_edges == 3 + 4

    def test_no_cross_edges(self):
        u = disjoint_union([complete_graph(3), complete_graph(3)])
        assert not u.has_edge((0, 0), (1, 0))

    def test_empty_input(self):
        assert disjoint_union([]).num_nodes == 0


class TestStochasticBlockModel:
    def test_node_count_and_labels(self):
        from repro.graph.generators import stochastic_block_model

        g = stochastic_block_model([4, 3], 1.0, 0.0, seed=1)
        assert g.num_nodes == 7
        assert g.has_node((0, 0))
        assert g.has_node((1, 2))

    def test_pure_communities_are_cliques(self):
        from repro.graph.generators import stochastic_block_model

        g = stochastic_block_model([4, 3], 1.0, 0.0, seed=1)
        assert g.is_clique([(0, i) for i in range(4)])
        assert g.is_clique([(1, i) for i in range(3)])
        assert not g.has_edge((0, 0), (1, 0))

    def test_p_out_one_connects_everything(self):
        from repro.graph.generators import stochastic_block_model

        g = stochastic_block_model([2, 2], 1.0, 1.0, seed=1)
        assert g.num_edges == 6

    def test_deterministic(self):
        from repro.graph.generators import stochastic_block_model

        a = stochastic_block_model([10, 10], 0.6, 0.05, seed=4)
        b = stochastic_block_model([10, 10], 0.6, 0.05, seed=4)
        assert a == b

    def test_validation(self):
        from repro.graph.generators import stochastic_block_model

        with pytest.raises(ValueError):
            stochastic_block_model([], 0.5, 0.1)
        with pytest.raises(ValueError):
            stochastic_block_model([3, 0], 0.5, 0.1)
        with pytest.raises(ValueError):
            stochastic_block_model([3], 1.5, 0.1)

    def test_percolation_recovers_planted_communities(self):
        from repro.graph.generators import stochastic_block_model
        from repro.mce.tomita import tomita
        from repro.relaxed.percolation import k_clique_communities

        g = stochastic_block_model([8, 8, 8], 0.95, 0.02, seed=9)
        communities = k_clique_communities(list(tomita(g)), 5)
        # Each planted group should be covered by one detected community.
        for community_index in range(3):
            members = {(community_index, i) for i in range(8)}
            assert any(members <= c for c in communities), community_index

"""Unit tests for triple-format serialisation and label hashing."""

from __future__ import annotations

import io

import pytest

from repro.errors import FormatError
from repro.graph.adjacency import Graph
from repro.graph.generators import erdos_renyi
from repro.graph.io import (
    hash_label,
    hash_labels,
    iter_edge_chunks,
    read_cliques,
    read_triples,
    write_cliques,
    write_triples,
)


class TestTripleRoundTrip:
    def test_basic(self, tmp_path):
        g = Graph(edges=[(1, 2), (2, 3)])
        path = tmp_path / "g.txt"
        count = write_triples(g, path)
        assert count == 2
        assert read_triples(path) == g

    def test_isolated_nodes_preserved(self, tmp_path):
        g = Graph(edges=[(1, 2)], nodes=[9])
        path = tmp_path / "g.txt"
        write_triples(g, path)
        assert read_triples(path) == g

    def test_string_labels(self, tmp_path):
        g = Graph(edges=[("alice", "bob")])
        path = tmp_path / "g.txt"
        write_triples(g, path)
        assert read_triples(path) == g

    def test_labels_with_spaces(self, tmp_path):
        g = Graph(edges=[("a b", "c d")])
        path = tmp_path / "g.txt"
        write_triples(g, path)
        assert read_triples(path) == g

    def test_stream_handles(self):
        g = Graph(edges=[(1, 2)])
        buffer = io.StringIO()
        write_triples(g, buffer)
        buffer.seek(0)
        assert read_triples(buffer) == g

    def test_random_graph_roundtrip(self, tmp_path):
        g = erdos_renyi(50, 0.2, seed=8)
        path = tmp_path / "g.txt"
        write_triples(g, path)
        assert read_triples(path) == g

    def test_empty_graph(self, tmp_path):
        path = tmp_path / "g.txt"
        write_triples(Graph(), path)
        assert read_triples(path) == Graph()


class TestTripleParsing:
    def test_comments_and_blanks_skipped(self):
        text = "# a comment\n\n1 e0 2\n"
        g = read_triples(io.StringIO(text))
        assert g.has_edge(1, 2)

    def test_bad_field_count(self):
        with pytest.raises(FormatError, match="expected 3 fields"):
            read_triples(io.StringIO("1 2\n"))

    def test_self_loop_rejected(self):
        with pytest.raises(FormatError, match="self-loop"):
            read_triples(io.StringIO("7 e0 7\n"))

    def test_integer_labels_restored(self):
        g = read_triples(io.StringIO("10 e0 20\n"))
        assert g.has_node(10)
        assert not g.has_node("10")

    def test_line_number_in_error(self):
        with pytest.raises(FormatError, match="line 2"):
            read_triples(io.StringIO("1 e0 2\nbroken line here now\n"))


class TestHashing:
    def test_stable(self):
        assert hash_label("x") == hash_label("x")

    def test_distinct(self):
        assert hash_label("x") != hash_label("y")

    def test_bit_width(self):
        assert hash_label("x", digest_bits=32) < 2**32

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            hash_label("x", digest_bits=7)

    def test_hash_labels_graph(self):
        g = Graph(edges=[("a", "b"), ("b", "c")])
        hashed, inverse = hash_labels(g)
        assert hashed.num_edges == 2
        assert sorted(inverse.values()) == ["a", "b", "c"]
        assert all(isinstance(n, int) for n in hashed.nodes())


class TestCliqueIO:
    def test_roundtrip(self, tmp_path):
        cliques = [frozenset({1, 2, 3}), frozenset({4})]
        path = tmp_path / "cliques.jsonl"
        assert write_cliques(cliques, path) == 2
        assert read_cliques(path) == cliques

    def test_bad_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("[1, 2]\nnot json\n")
        with pytest.raises(FormatError, match="line 2"):
            read_cliques(path)

    def test_non_array(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"a": 1}\n')
        with pytest.raises(FormatError, match="array"):
            read_cliques(path)


class TestEdgeChunks:
    def test_chunking(self):
        g = erdos_renyi(20, 0.3, seed=1)
        chunks = list(iter_edge_chunks(g, 7))
        assert sum(len(c) for c in chunks) == g.num_edges
        assert all(len(c) <= 7 for c in chunks)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            list(iter_edge_chunks(Graph(), 0))


class TestHashCollisions:
    def test_collision_detected_at_tiny_digest(self):
        # 300 labels into an 8-bit hash space must collide.
        g = Graph(nodes=[f"user{i}" for i in range(300)])
        with pytest.raises(FormatError, match="collision"):
            hash_labels(g, digest_bits=8)


class TestQuotedIsolatedNodes:
    def test_isolated_node_with_spaces(self, tmp_path):
        g = Graph(nodes=["a b"])
        path = tmp_path / "g.triples"
        write_triples(g, path)
        assert read_triples(path) == g

    def test_numeric_string_label_roundtrip(self, tmp_path):
        # "12" (string) must not come back as the integer 12.
        g = Graph(edges=[("12", "x")])
        path = tmp_path / "g.triples"
        write_triples(g, path)
        loaded = read_triples(path)
        assert loaded.has_node("12")
        assert not loaded.has_node(12)

    def test_unterminated_quote_rejected(self):
        with pytest.raises(FormatError, match="unterminated"):
            read_triples(io.StringIO('"broken e0 x\n'))

"""Unit tests for scalar graph properties (Section 4 parameters)."""

from __future__ import annotations

import math

import pytest

from repro.graph.adjacency import Graph
from repro.graph.generators import (
    barabasi_albert,
    complete_graph,
    cycle_graph,
    star_graph,
)
from repro.graph.properties import (
    GraphSummary,
    d_star,
    degree_histogram,
    fraction_with_degree_at_most,
    hub_fraction,
    power_law_exponent,
    summarize,
)


class TestDStar:
    def test_empty(self):
        assert d_star(Graph()) == 0

    def test_single_node(self):
        assert d_star(Graph(nodes=[1])) == 0

    def test_single_edge(self):
        assert d_star(Graph(edges=[(1, 2)])) == 1

    def test_complete(self):
        # K_n: n nodes of degree n-1, so d* = n-1.
        assert d_star(complete_graph(6)) == 5

    def test_cycle(self):
        # All degrees 2; at least 2 nodes of degree >= 2 -> d* = 2.
        assert d_star(cycle_graph(8)) == 2

    def test_star(self):
        # Hub degree n, leaves degree 1: only 1 node has degree >= 2.
        assert d_star(star_graph(9)) == 1

    def test_h_index_example(self):
        # Degrees: 4, 3, 3, 2, 1, 1 -> three nodes with degree >= 3.
        g = Graph(
            edges=[(0, 1), (0, 2), (0, 3), (0, 4), (1, 2), (1, 3), (2, 5)]
        )
        degrees = sorted((g.degree(n) for n in g.nodes()), reverse=True)
        assert degrees == [4, 3, 3, 2, 1, 1]
        assert d_star(g) == 3

    def test_monotone_under_edge_addition(self):
        g = cycle_graph(6)
        before = d_star(g)
        g.add_edge(0, 3)
        assert d_star(g) >= before


class TestDegreeHistogram:
    def test_empty(self):
        assert degree_histogram(Graph()) == []

    def test_full_range(self):
        g = star_graph(3)
        hist = degree_histogram(g)
        assert hist == [0, 3, 0, 1]

    def test_truncation_drops_tail(self):
        g = star_graph(30)
        hist = degree_histogram(g, max_degree=5)
        assert len(hist) == 6
        assert hist[1] == 30
        assert sum(hist) == 30  # the hub (degree 30) is dropped

    def test_counts_sum_to_nodes_when_untruncated(self):
        g = barabasi_albert(50, 3, seed=2)
        assert sum(degree_histogram(g)) == g.num_nodes


class TestHubFraction:
    def test_empty(self):
        assert hub_fraction(Graph(), 5) == 0.0

    def test_star(self):
        g = star_graph(9)
        assert hub_fraction(g, 5) == pytest.approx(0.1)

    def test_all_hubs(self):
        assert hub_fraction(complete_graph(4), 2) == 1.0

    def test_no_hubs(self):
        assert hub_fraction(complete_graph(4), 10) == 0.0


class TestLowDegreeFraction:
    def test_empty(self):
        assert fraction_with_degree_at_most(Graph(), 20) == 0.0

    def test_star(self):
        g = star_graph(9)
        assert fraction_with_degree_at_most(g, 1) == pytest.approx(0.9)

    def test_all(self):
        g = cycle_graph(5)
        assert fraction_with_degree_at_most(g, 2) == 1.0


class TestPowerLawExponent:
    def test_too_few_nodes(self):
        assert math.isnan(power_law_exponent(Graph(nodes=[1])))

    def test_invalid_d_min(self):
        with pytest.raises(ValueError):
            power_law_exponent(Graph(), d_min=0)

    def test_ba_in_scale_free_range(self):
        g = barabasi_albert(2000, 3, seed=1)
        alpha = power_law_exponent(g, d_min=3)
        assert 1.8 < alpha < 3.8

    def test_regular_graph_diverges(self):
        # All degrees equal d_min: log-sum is positive but tiny spread;
        # the MLE is finite and large or inf for degenerate input.
        g = cycle_graph(10)
        alpha = power_law_exponent(g, d_min=2)
        assert alpha > 3.0


class TestSummary:
    def test_of_complete(self):
        summary = GraphSummary.of(complete_graph(5))
        assert summary.num_nodes == 5
        assert summary.num_edges == 10
        assert summary.density == pytest.approx(1.0)
        assert summary.degeneracy == 4
        assert summary.d_star == 4

    def test_as_tuple_order(self):
        summary = GraphSummary.of(complete_graph(3))
        assert summary.as_tuple() == (3.0, 3.0, 1.0, 2.0, 2.0)

    def test_summarize_free_function(self):
        g = cycle_graph(4)
        assert summarize(g) == GraphSummary.of(g)

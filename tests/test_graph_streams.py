"""Unit tests for evolving-network edge streams."""

from __future__ import annotations

import pytest

from repro.graph.adjacency import Graph
from repro.graph.generators import complete_graph, erdos_renyi
from repro.graph.streams import apply_stream, edge_stream
from repro.incremental.maintainer import IncrementalMCE
from repro.mce.tomita import tomita


class TestConsistency:
    @pytest.mark.parametrize("seed", range(3))
    def test_stream_applies_cleanly(self, seed):
        g = erdos_renyi(15, 0.2, seed=seed)
        live = g.copy()
        for event in edge_stream(g, 100, churn=0.3, seed=seed):
            if event.operation == "insert":
                assert not live.has_edge(event.u, event.v)
                live.add_edge(event.u, event.v)
            else:
                assert live.has_edge(event.u, event.v)
                live.remove_edge(event.u, event.v)

    def test_apply_stream_matches_manual(self):
        g = erdos_renyi(12, 0.2, seed=4)
        events = list(edge_stream(g, 50, seed=4))
        applied = apply_stream(g, iter(events))
        manual = g.copy()
        for event in events:
            if event.operation == "insert":
                manual.add_edge(event.u, event.v)
            else:
                manual.remove_edge(event.u, event.v)
        assert applied == manual

    def test_original_graph_untouched(self):
        g = erdos_renyi(10, 0.3, seed=1)
        before = g.copy()
        list(edge_stream(g, 30, seed=1))
        assert g == before

    def test_deterministic(self):
        g = erdos_renyi(12, 0.2, seed=2)
        a = list(edge_stream(g, 40, seed=9))
        b = list(edge_stream(g, 40, seed=9))
        assert a == b

    def test_length(self):
        g = erdos_renyi(10, 0.2, seed=3)
        assert len(list(edge_stream(g, 25, seed=1))) == 25

    def test_steps_sequential(self):
        g = erdos_renyi(10, 0.2, seed=3)
        steps = [event.step for event in edge_stream(g, 10, seed=1)]
        assert steps == list(range(10))


class TestEdgeCases:
    def test_complete_graph_forces_deletions(self):
        g = complete_graph(4)
        events = list(edge_stream(g, 3, churn=0.0, seed=0))
        assert events[0].operation == "delete"

    def test_churn_zero_grows(self):
        g = Graph(nodes=range(10))
        events = list(edge_stream(g, 20, churn=0.0, seed=5))
        assert all(event.operation == "insert" for event in events)

    def test_churn_one_only_deletes_while_possible(self):
        g = complete_graph(4)
        events = list(edge_stream(g, 6, churn=1.0, seed=5))
        assert all(event.operation == "delete" for event in events)

    def test_validation(self):
        g = erdos_renyi(10, 0.2, seed=1)
        with pytest.raises(ValueError):
            list(edge_stream(g, -1))
        with pytest.raises(ValueError):
            list(edge_stream(g, 5, churn=1.5))
        with pytest.raises(ValueError):
            list(edge_stream(Graph(nodes=[1]), 5))

    def test_uniform_mode(self):
        g = Graph(nodes=range(8))
        events = list(edge_stream(g, 15, preferential=False, seed=6))
        assert len(events) == 15


class TestDrivesIncremental:
    def test_maintainer_tracks_stream(self):
        g = erdos_renyi(12, 0.25, seed=7)
        tracker = IncrementalMCE(g)
        for event in edge_stream(g, 60, churn=0.3, seed=7):
            if event.operation == "insert":
                tracker.insert_edge(event.u, event.v)
            else:
                tracker.delete_edge(event.u, event.v)
        assert tracker.cliques == set(tomita(tracker.graph))

"""Unit tests for subgraph extraction and relabeling."""

from __future__ import annotations

import pytest

from repro.errors import NodeNotFoundError
from repro.graph.adjacency import Graph
from repro.graph.generators import complete_graph, cycle_graph
from repro.graph.views import (
    connected_components,
    filter_nodes,
    induced_subgraph,
    map_cliques,
    relabel,
    to_integer_labels,
)


class TestInducedSubgraph:
    def test_keeps_internal_edges(self):
        g = Graph(edges=[(1, 2), (2, 3), (3, 4), (1, 3)])
        sub = induced_subgraph(g, [1, 2, 3])
        assert sub.num_nodes == 3
        assert sub.num_edges == 3

    def test_drops_external_edges(self):
        g = Graph(edges=[(1, 2), (2, 3)])
        sub = induced_subgraph(g, [1, 3])
        assert sub.num_edges == 0

    def test_keeps_isolated_members(self):
        g = Graph(edges=[(1, 2)], nodes=[5])
        sub = induced_subgraph(g, [1, 5])
        assert set(sub.nodes()) == {1, 5}

    def test_empty_selection(self):
        g = Graph(edges=[(1, 2)])
        sub = induced_subgraph(g, [])
        assert sub.num_nodes == 0

    def test_whole_graph(self):
        g = complete_graph(5)
        assert induced_subgraph(g, g.nodes()) == g

    def test_missing_node_raises(self):
        g = Graph(edges=[(1, 2)])
        with pytest.raises(NodeNotFoundError):
            induced_subgraph(g, [1, 9])

    def test_order_follows_selection(self):
        g = Graph(edges=[(1, 2), (2, 3)])
        sub = induced_subgraph(g, [3, 1])
        assert list(sub.nodes()) == [3, 1]

    def test_duplicates_collapse(self):
        g = Graph(edges=[(1, 2)])
        sub = induced_subgraph(g, [1, 1, 2])
        assert sub.num_nodes == 2

    def test_does_not_mutate_original(self):
        g = Graph(edges=[(1, 2), (2, 3)])
        before = g.copy()
        induced_subgraph(g, [1, 2])
        assert g == before


class TestRelabel:
    def test_basic(self):
        g = Graph(edges=[(1, 2)])
        out = relabel(g, {1: "a", 2: "b"})
        assert out.has_edge("a", "b")

    def test_partial_mapping(self):
        g = Graph(edges=[(1, 2)])
        out = relabel(g, {1: "a"})
        assert out.has_edge("a", 2)

    def test_collision_rejected(self):
        g = Graph(edges=[(1, 2)])
        with pytest.raises(ValueError):
            relabel(g, {1: "x", 2: "x"})

    def test_collision_with_unmapped_rejected(self):
        g = Graph(edges=[(1, 2)])
        with pytest.raises(ValueError):
            relabel(g, {1: 2})


class TestIntegerLabels:
    def test_roundtrip(self):
        g = Graph(edges=[("a", "b"), ("b", "c")])
        compact, inverse = to_integer_labels(g)
        assert set(compact.nodes()) == {0, 1, 2}
        assert compact.num_edges == 2
        assert sorted(inverse.values()) == ["a", "b", "c"]

    def test_insertion_order(self):
        g = Graph(nodes=["z", "a", "m"])
        _, inverse = to_integer_labels(g)
        assert inverse == {0: "z", 1: "a", 2: "m"}

    def test_map_cliques(self):
        cliques = [frozenset({0, 1}), frozenset({2})]
        inverse = {0: "a", 1: "b", 2: "c"}
        assert map_cliques(cliques, inverse) == [
            frozenset({"a", "b"}),
            frozenset({"c"}),
        ]

    def test_empty_graph(self):
        compact, inverse = to_integer_labels(Graph())
        assert compact.num_nodes == 0
        assert inverse == {}


class TestFilterNodes:
    def test_predicate(self):
        g = Graph(edges=[(1, 2), (2, 3), (3, 4)])
        sub = filter_nodes(g, lambda n: n % 2 == 0)
        assert set(sub.nodes()) == {2, 4}
        assert sub.num_edges == 0


class TestConnectedComponents:
    def test_single_component(self):
        g = cycle_graph(5)
        components = connected_components(g)
        assert len(components) == 1
        assert components[0] == frozenset(range(5))

    def test_multiple_components(self):
        g = Graph(edges=[(1, 2), (3, 4)], nodes=[9])
        components = connected_components(g)
        assert len(components) == 3
        assert frozenset({9}) in components

    def test_empty(self):
        assert connected_components(Graph()) == []

    def test_order_by_first_node(self):
        g = Graph(nodes=[5, 1])
        components = connected_components(g)
        assert components[0] == frozenset({5})

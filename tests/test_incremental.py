"""Unit and property tests for incremental clique maintenance."""

from __future__ import annotations

import random

import pytest

from repro.errors import GraphError, SelfLoopError
from repro.graph.adjacency import Graph
from repro.graph.generators import complete_graph, erdos_renyi
from repro.incremental.maintainer import IncrementalMCE, replay
from repro.mce.tomita import tomita


def oracle(graph: Graph) -> set[frozenset]:
    return set(tomita(graph))


class TestInsertEdge:
    def test_triangle_closure(self):
        tracker = IncrementalMCE(Graph(edges=[(1, 2), (2, 3)]))
        tracker.insert_edge(1, 3)
        assert tracker.cliques == {frozenset({1, 2, 3})}

    def test_insert_between_components(self):
        tracker = IncrementalMCE(Graph(nodes=[1, 2]))
        tracker.insert_edge(1, 2)
        assert tracker.cliques == {frozenset({1, 2})}

    def test_insert_creates_endpoints(self):
        tracker = IncrementalMCE(Graph())
        tracker.insert_edge("a", "b")
        assert tracker.cliques == {frozenset({"a", "b"})}

    def test_idempotent(self):
        tracker = IncrementalMCE(Graph(edges=[(1, 2)]))
        before = tracker.cliques
        tracker.insert_edge(1, 2)
        assert tracker.cliques == before

    def test_self_loop_rejected(self):
        tracker = IncrementalMCE(Graph(nodes=[1]))
        with pytest.raises(SelfLoopError):
            tracker.insert_edge(1, 1)

    def test_absorbs_old_cliques(self):
        g = complete_graph(4)
        g.remove_edge(0, 1)
        tracker = IncrementalMCE(g)
        assert len(tracker.cliques) == 2
        tracker.insert_edge(0, 1)
        assert tracker.cliques == {frozenset(range(4))}


class TestDeleteEdge:
    def test_split_clique(self):
        tracker = IncrementalMCE(complete_graph(3))
        tracker.delete_edge(0, 1)
        assert tracker.cliques == {frozenset({0, 2}), frozenset({1, 2})}

    def test_missing_edge_rejected(self):
        tracker = IncrementalMCE(Graph(nodes=[1, 2]))
        with pytest.raises(GraphError):
            tracker.delete_edge(1, 2)

    def test_halves_deduplicated(self):
        # Two maximal cliques sharing the split edge can produce the
        # same half; it must appear once.
        g = Graph(edges=[(0, 1), (0, 2), (1, 2), (0, 3), (1, 3)])
        tracker = IncrementalMCE(g)
        tracker.delete_edge(0, 1)
        assert tracker.cliques == oracle(tracker.graph)

    def test_isolated_endpoint_becomes_singleton(self):
        tracker = IncrementalMCE(Graph(edges=[(1, 2)]))
        tracker.delete_edge(1, 2)
        assert tracker.cliques == {frozenset({1}), frozenset({2})}


class TestNodeOperations:
    def test_insert_node(self):
        tracker = IncrementalMCE(Graph())
        tracker.insert_node("x")
        assert tracker.cliques == {frozenset({"x"})}

    def test_delete_node(self):
        tracker = IncrementalMCE(complete_graph(4))
        tracker.delete_node(0)
        assert tracker.cliques == {frozenset({1, 2, 3})}
        assert not tracker.graph.has_node(0)

    def test_cliques_of(self):
        tracker = IncrementalMCE(complete_graph(3))
        assert tracker.cliques_of(0) == {frozenset({0, 1, 2})}
        assert tracker.cliques_of("ghost") == frozenset()


class TestRandomizedAgainstOracle:
    @pytest.mark.parametrize("seed", range(3))
    def test_random_update_stream(self, seed):
        rng = random.Random(seed)
        g = erdos_renyi(12, 0.3, seed=seed)
        tracker = IncrementalMCE(g)
        nodes = list(g.nodes())
        for _step in range(120):
            u, v = rng.sample(nodes, 2)
            if tracker.graph.has_edge(u, v):
                tracker.delete_edge(u, v)
            else:
                tracker.insert_edge(u, v)
            assert tracker.cliques == oracle(tracker.graph)

    def test_graph_accessor_is_a_copy(self):
        tracker = IncrementalMCE(complete_graph(3))
        copy = tracker.graph
        copy.remove_edge(0, 1)
        assert tracker.cliques == {frozenset({0, 1, 2})}


class TestReplay:
    def test_stream(self):
        tracker = replay(
            Graph(nodes=[1, 2, 3]),
            [("insert", 1, 2), ("insert", 2, 3), ("insert", 1, 3), ("delete", 1, 2)],
        )
        assert tracker.cliques == oracle(tracker.graph)

    def test_unknown_operation(self):
        with pytest.raises(ValueError):
            replay(Graph(nodes=[1, 2]), [("upsert", 1, 2)])


class TestFromResult:
    def test_seeded_from_driver_output(self):
        from repro.core.driver import find_max_cliques

        g = erdos_renyi(14, 0.3, seed=11)
        result = find_max_cliques(g, 8)
        tracker = IncrementalMCE.from_result(g, result)
        assert tracker.cliques == set(result.cliques)
        tracker.insert_edge(*next(
            (u, v)
            for u in g.nodes()
            for v in g.nodes()
            if u != v and not g.has_edge(u, v)
        ))
        assert tracker.cliques == oracle(tracker.graph)

    def test_explicit_cliques_adopted(self):
        g = complete_graph(3)
        tracker = IncrementalMCE(g, cliques=[frozenset({0, 1, 2})])
        assert tracker.num_cliques == 1

"""End-to-end integration tests across modules.

These exercise whole pipelines the way the examples and benchmarks do:
dataset → decomposition → distributed analysis → filtering → reporting,
cross-checked against the networkx oracle.
"""

from __future__ import annotations

import warnings

import pytest

from conftest import nx_cliques
from repro.analysis.cliques import largest_cliques_split, provenance_split
from repro.baselines.naive_blocks import naive_block_mce
from repro.core.driver import find_max_cliques
from repro.decision.training import build_corpus, label_corpus, train
from repro.distributed.runner import run_distributed
from repro.graph.cores import degeneracy
from repro.graph.datasets import load_dataset
from repro.graph.generators import h_n, social_network
from repro.graph.io import read_cliques, write_cliques


@pytest.fixture(scope="module")
def gplus():
    return load_dataset("google+")


class TestDatasetPipeline:
    def test_google_plus_end_to_end(self, gplus):
        d = gplus.max_degree()
        result = find_max_cliques(gplus, int(0.5 * d))
        assert set(result.cliques) == nx_cliques(gplus)
        assert result.max_clique_size() == 18  # Table/figure value
        assert not result.fallback_used

    def test_md_sweep_converges_like_paper(self, gplus):
        # Paper Section 6.2: two first-level iterations at m/d in
        # {0.5, 0.9}, three at {0.1, 0.3}.  Our stand-ins reproduce
        # monotone-growing depth as the ratio shrinks.
        d = gplus.max_degree()
        depths = {}
        for ratio in (0.9, 0.5, 0.1):
            result = find_max_cliques(gplus, max(2, int(ratio * d)))
            assert not result.fallback_used
            depths[ratio] = result.recursion_depth
        assert depths[0.9] <= depths[0.5] <= depths[0.1]
        assert depths[0.9] >= 2

    def test_hub_cliques_appear_at_small_ratio(self, gplus):
        d = gplus.max_degree()
        result = find_max_cliques(gplus, max(2, int(0.1 * d)))
        split = provenance_split(result)
        assert split.hub_count > 0
        # Hub-only cliques are comparable in size to the overall largest
        # (Section 6.3 "Effectiveness").
        assert split.hub_avg_size >= split.feasible_avg_size * 0.5

    def test_largest_clique_analysis(self, gplus):
        d = gplus.max_degree()
        result = find_max_cliques(gplus, max(2, int(0.1 * d)))
        feasible_share, hub_share = largest_cliques_split(result, k=200)
        assert feasible_share + hub_share == pytest.approx(1.0)
        assert hub_share > 0.0


class TestDistributedPipeline:
    def test_distributed_equals_serial_on_dataset(self, gplus):
        d = gplus.max_degree()
        m = int(0.5 * d)
        serial = find_max_cliques(gplus, m)
        distributed = run_distributed(gplus, m)
        assert set(distributed.cliques) == set(serial.cliques)
        assert distributed.simulated_speedup() >= 1.0


class TestNaiveContrast:
    def test_naive_loses_what_we_keep(self, gplus):
        d = gplus.max_degree()
        m = max(2, int(0.1 * d))
        reference = nx_cliques(gplus)
        ours = find_max_cliques(gplus, m)
        naive = naive_block_mce(gplus, m)
        assert set(ours.cliques) == reference
        assert len(naive.missed(reference)) > 0


class TestTheorem1:
    def test_pathological_vs_real_recursion_depth(self, gplus):
        # H_n needs Omega(n) rounds; the social stand-in needs only a few.
        m_construction = 3
        pathological = h_n(60, m_construction)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            deep = find_max_cliques(pathological, m_construction + 2)
        assert deep.recursion_depth >= 20
        shallow = find_max_cliques(gplus, int(0.5 * gplus.max_degree()))
        assert shallow.recursion_depth <= 4

    def test_m_above_degeneracy_suffices(self):
        g = social_network(120, attachment=3, planted_cliques=(8,), seed=13)
        m = degeneracy(g) + 1
        result = find_max_cliques(g, m, fallback="raise")
        assert set(result.cliques) == nx_cliques(g)


class TestPersistence:
    def test_clique_output_roundtrip(self, tmp_path, gplus):
        result = find_max_cliques(gplus, int(0.5 * gplus.max_degree()))
        path = tmp_path / "cliques.jsonl"
        write_cliques(result.cliques, path)
        assert set(read_cliques(path)) == set(result.cliques)


class TestDecisionPipeline:
    def test_training_to_selection(self):
        corpus = build_corpus(count=12, seed=3, size_range=(20, 60))
        labelled = label_corpus(corpus)
        result = train(labelled, seed=5)
        # The learned tree routes every test graph to a runnable combo.
        from repro.decision.paper_tree import combo_for_label

        for entry in result.testing:
            label = result.tree.predict(entry.features)
            combo = combo_for_label(label)
            cliques = set(combo.run(entry.graph))
            assert cliques == nx_cliques(entry.graph)

"""Cross-validation of every MCE algorithm on every backend.

The oracle is networkx ``find_cliques`` (an implementation this library
shares no code with).  Each of the 16 (algorithm × backend) combinations
— the paper's Table 1 twelve plus the packed ``bitmatrix`` column —
must produce exactly the same *set* of cliques with no duplicates, on
every corpus graph.
"""

from __future__ import annotations

import pytest

from conftest import CORPUS, FIGURE1_CLIQUES, nx_cliques
from repro.graph.adjacency import Graph
from repro.graph.generators import complete_graph, erdos_renyi
from repro.mce.backends import BACKEND_NAMES
from repro.mce.bron_kerbosch import bk_pivot, bron_kerbosch
from repro.mce.eppstein import eppstein
from repro.mce.registry import ALL_COMBOS, PAPER_COMBOS, Combo, run_combo
from repro.mce.tomita import tomita
from repro.mce.xpivot import xpivot

ALGORITHMS = {
    "bron_kerbosch": bron_kerbosch,
    "bk_pivot": bk_pivot,
    "tomita": tomita,
    "eppstein": eppstein,
    "xpivot": xpivot,
}


@pytest.mark.parametrize("backend", BACKEND_NAMES)
@pytest.mark.parametrize("algorithm", ALGORITHMS, ids=ALGORITHMS.keys())
@pytest.mark.parametrize(
    "name,graph", CORPUS, ids=[name for name, _ in CORPUS]
)
def test_matches_networkx(algorithm, backend, name, graph):
    found = list(ALGORITHMS[algorithm](graph, backend))
    assert len(found) == len(set(found)), "duplicate cliques emitted"
    assert set(found) == nx_cliques(graph)


@pytest.mark.parametrize("combo", ALL_COMBOS, ids=[c.name for c in ALL_COMBOS])
def test_figure1_via_registry(figure1, combo):
    assert set(run_combo(figure1, combo)) == FIGURE1_CLIQUES


class TestEdgeCases:
    def test_empty_graph_yields_nothing(self):
        for algorithm in ALGORITHMS.values():
            assert list(algorithm(Graph(), "lists")) == []

    def test_single_node_is_maximal(self):
        g = Graph(nodes=["a"])
        for algorithm in ALGORITHMS.values():
            assert list(algorithm(g, "lists")) == [frozenset({"a"})]

    def test_isolated_nodes_each_maximal(self):
        g = Graph(nodes=[1, 2, 3])
        for algorithm in ALGORITHMS.values():
            assert set(algorithm(g, "bitsets")) == {
                frozenset({1}),
                frozenset({2}),
                frozenset({3}),
            }

    def test_complete_graph_single_clique(self):
        g = complete_graph(8)
        for algorithm in ALGORITHMS.values():
            assert list(algorithm(g, "matrix")) == [frozenset(range(8))]

    def test_string_labels(self):
        g = Graph(edges=[("a", "b"), ("b", "c"), ("a", "c")])
        assert set(tomita(g)) == {frozenset({"a", "b", "c"})}


class TestMoonMoserWorstCase:
    def test_clique_count(self):
        # The Moon–Moser graph K_{3,3,3...} (complete multipartite with
        # parts of size 3) has exactly 3^(n/3) maximal cliques — the
        # worst case Tomita's bound is tight on.
        parts = 3
        g = Graph()
        nodes = [(p, i) for p in range(parts) for i in range(3)]
        for u in nodes:
            g.add_node(u)
        for u in nodes:
            for v in nodes:
                if u < v and u[0] != v[0]:
                    g.add_edge(u, v)
        for algorithm in ALGORITHMS.values():
            assert len(list(algorithm(g, "bitsets"))) == 3**parts


class TestDeterminism:
    @pytest.mark.parametrize("combo", ALL_COMBOS, ids=[c.name for c in ALL_COMBOS])
    def test_same_output_order_across_runs(self, combo):
        g = erdos_renyi(25, 0.3, seed=21)
        assert run_combo(g, combo) == run_combo(g, combo)


class TestRegistry:
    def test_twelve_paper_combos(self):
        # The paper's Table 1 has 12 cells; the portfolio adds a fourth
        # structure (bitmatrix), giving 16 combinations overall.
        assert len(PAPER_COMBOS) == 12
        assert len(ALL_COMBOS) == 16
        assert not any(c.backend == "bitmatrix" for c in PAPER_COMBOS)

    def test_combo_names(self):
        names = {combo.name for combo in ALL_COMBOS}
        assert "[BitSets/Tomita]" in names
        assert "[Lists/XPivot]" in names
        assert "[Matrix/BKPivot]" in names
        assert "[BitMatrix/Tomita]" in names

    def test_unknown_algorithm(self):
        from repro.errors import AlgorithmNotFoundError

        with pytest.raises(AlgorithmNotFoundError):
            Combo("dijkstra", "lists")

    def test_unknown_backend(self):
        from repro.errors import AlgorithmNotFoundError

        with pytest.raises(AlgorithmNotFoundError):
            Combo("tomita", "btree")

    def test_time_combo_positive(self):
        from repro.mce.registry import time_combo

        g = complete_graph(6)
        seconds = time_combo(g, Combo("tomita", "bitsets"))
        assert seconds > 0.0

    def test_time_combo_invalid_repeats(self):
        from repro.mce.registry import time_combo

        with pytest.raises(ValueError):
            time_combo(Graph(), Combo("tomita", "bitsets"), repeats=0)

"""Unit tests for anchored enumeration (the MCE(k, P, X) primitive)."""

from __future__ import annotations

import pytest

from repro.graph.adjacency import Graph
from repro.graph.generators import complete_graph, erdos_renyi
from repro.mce.anchored import enumerate_anchored, enumerate_anchored_labels
from repro.mce.backends import BACKEND_NAMES, build_backend
from repro.mce.recursion import tomita_pivot
from repro.mce.tomita import tomita


@pytest.mark.parametrize("backend_name", BACKEND_NAMES)
class TestAnchored:
    def test_all_cliques_through_anchor(self, backend_name):
        g = Graph(edges=[(0, 1), (1, 2), (0, 2), (2, 3)])
        backend = build_backend(g, backend_name)
        found = set(
            enumerate_anchored(
                backend,
                backend.index_of(2),
                range(4),
                [],
                tomita_pivot,
            )
        )
        labelled = {frozenset(backend.label(i) for i in c) for c in found}
        assert labelled == {frozenset({0, 1, 2}), frozenset({2, 3})}

    def test_excluded_node_suppresses(self, backend_name):
        g = complete_graph(4)
        backend = build_backend(g, backend_name)
        # Anchor 0; node 3 is excluded, so the clique {0,1,2,3} is not
        # maximal w.r.t. candidates ∪ excluded and nothing is reported.
        found = list(
            enumerate_anchored(
                backend, 0, [1, 2], [3], tomita_pivot
            )
        )
        assert found == []

    def test_anchored_union_covers_graph(self, backend_name):
        # Sweeping the anchor over all nodes with the P/X shift recovers
        # exactly the whole-graph MCE output with no duplicates.
        g = erdos_renyi(18, 0.35, seed=2)
        backend = build_backend(g, backend_name)
        candidates = backend.full()
        excluded = backend.empty()
        found = []
        for index in range(g.num_nodes):
            for clique in enumerate_anchored(
                backend,
                index,
                backend.iterate(candidates),
                backend.iterate(excluded),
                tomita_pivot,
            ):
                found.append(frozenset(backend.label(i) for i in clique))
            candidates = backend.remove(candidates, index)
            excluded = backend.add(excluded, index)
        assert len(found) == len(set(found))
        assert set(found) == set(tomita(g))

    def test_label_wrapper(self, backend_name):
        g = Graph(edges=[("a", "b"), ("b", "c"), ("a", "c")])
        backend = build_backend(g, backend_name)
        found = set(
            enumerate_anchored_labels(
                backend, "a", ["b", "c"], [], tomita_pivot
            )
        )
        assert found == {frozenset({"a", "b", "c"})}

    def test_isolated_anchor(self, backend_name):
        g = Graph(nodes=[0, 1])
        backend = build_backend(g, backend_name)
        found = list(
            enumerate_anchored(backend, 0, [1], [], tomita_pivot)
        )
        assert [frozenset(backend.label(i) for i in c) for c in found] == [
            frozenset({0})
        ]

"""Unit tests for the three graph-representation backends.

Every test is parametrized over all backends: the whole point of the
backend protocol is that the MCE algorithms cannot tell them apart.
"""

from __future__ import annotations

import pytest

from repro.errors import AlgorithmNotFoundError
from repro.graph.adjacency import Graph
from repro.graph.generators import complete_graph, erdos_renyi
from repro.mce.backends import BACKEND_NAMES, build_backend

pytestmark = pytest.mark.parametrize("backend_name", BACKEND_NAMES)


@pytest.fixture
def square() -> Graph:
    """4-cycle: 0-1-2-3-0."""
    return Graph(edges=[(0, 1), (1, 2), (2, 3), (3, 0)])


def test_full_and_empty(square, backend_name):
    backend = build_backend(square, backend_name)
    assert backend.count(backend.full()) == 4
    assert backend.count(backend.empty()) == 0
    assert backend.is_empty(backend.empty())
    assert not backend.is_empty(backend.full())


def test_make_and_iterate(square, backend_name):
    backend = build_backend(square, backend_name)
    members = backend.make([0, 2])
    assert list(backend.iterate(members)) == [0, 2]
    assert backend.count(members) == 2


def test_make_from_labels(backend_name):
    g = Graph(edges=[("a", "b"), ("b", "c")])
    backend = build_backend(g, backend_name)
    members = backend.make_from_labels(["a", "c"])
    assert backend.to_labels(members) == frozenset({"a", "c"})


def test_intersect_neighbors(square, backend_name):
    backend = build_backend(square, backend_name)
    full = backend.full()
    # Neighbours of 0 are 1 and 3.
    neighbors = backend.intersect_neighbors(full, 0)
    assert backend.to_labels(neighbors) == frozenset({1, 3})


def test_minus_neighbors_keeps_self(square, backend_name):
    backend = build_backend(square, backend_name)
    rest = backend.minus_neighbors(backend.full(), 0)
    assert backend.to_labels(rest) == frozenset({0, 2})


def test_add_remove(square, backend_name):
    backend = build_backend(square, backend_name)
    members = backend.make([1])
    grown = backend.add(members, 2)
    assert backend.count(grown) == 2
    shrunk = backend.remove(grown, 1)
    assert backend.to_labels(shrunk) == frozenset({2})
    # Immutable style: the original is untouched.
    assert backend.to_labels(members) == frozenset({1})


def test_add_idempotent(square, backend_name):
    backend = build_backend(square, backend_name)
    members = backend.add(backend.make([1]), 1)
    assert backend.count(members) == 1


def test_remove_absent(square, backend_name):
    backend = build_backend(square, backend_name)
    members = backend.remove(backend.make([1]), 3)
    assert backend.to_labels(members) == frozenset({1})


def test_common_count(square, backend_name):
    backend = build_backend(square, backend_name)
    members = backend.make([1, 2, 3])
    # N(0) = {1, 3}; intersection with {1, 2, 3} has 2 elements.
    assert backend.common_count(0, members) == 2


def test_degree(backend_name):
    g = complete_graph(5)
    backend = build_backend(g, backend_name)
    assert all(backend.degree(i) == 4 for i in range(5))


def test_contains(square, backend_name):
    backend = build_backend(square, backend_name)
    members = backend.make([0, 2])
    assert backend.contains(members, 0)
    assert not backend.contains(members, 1)


def test_label_index_roundtrip(backend_name):
    g = Graph(edges=[("x", "y"), ("y", "z")])
    backend = build_backend(g, backend_name)
    for node in g.nodes():
        assert backend.label(backend.index_of(node)) == node


def test_empty_graph(backend_name):
    backend = build_backend(Graph(), backend_name)
    assert backend.n == 0
    assert backend.is_empty(backend.full())


def test_consistency_across_backends_on_random_graph(backend_name):
    g = erdos_renyi(20, 0.3, seed=17)
    reference = build_backend(g, "lists")
    other = build_backend(g, backend_name)
    full_ref = reference.full()
    full_other = other.full()
    for i in range(g.num_nodes):
        assert reference.to_labels(
            reference.intersect_neighbors(full_ref, i)
        ) == other.to_labels(other.intersect_neighbors(full_other, i))
        assert reference.common_count(i, full_ref) == other.common_count(
            i, full_other
        )
        assert reference.degree(i) == other.degree(i)


def test_unknown_backend_rejected(backend_name):
    with pytest.raises(AlgorithmNotFoundError):
        build_backend(Graph(), "cuckoo-" + backend_name)

"""The packed-bitmap backend and its word-parallel kernel.

Four layers of pinning, from bit-twiddling up to whole runs:

* the packing helpers (``popcount``/``bits_to_indices``/``pack_indices``)
  against their obvious Python-set formulations;
* the explicit-stack enumerator and the packed anchored sweep against
  the shared recursion they replace, frame for frame;
* the CSR-direct materialization (``extract_block_bitmap``, scratch
  cache, ``features_from_bitmap``, ``degeneracy_order_packed``) against
  the ``Graph``-based constructions they bypass;
* a hypothesis property pinning ``bitmatrix`` to the three paper
  backends across every algorithm on ER/BA/SBM graphs, plus a golden
  regression forcing the new backend through all five dataset
  stand-ins.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import CORPUS, nx_cliques
from repro.decision.features import BlockFeatures, features_from_bitmap
from repro.decision.paper_tree import extended_tree, paper_tree, select_combo
from repro.graph.adjacency import Graph
from repro.graph.cores import degeneracy
from repro.graph.csr import BitmapScratch, CSRGraph, extract_block_bitmap
from repro.graph.generators import (
    barabasi_albert,
    complete_graph,
    erdos_renyi,
    stochastic_block_model,
)
from repro.mce.anchored import enumerate_anchored_native
from repro.mce.backends import backend_from_bitmap, build_backend
from repro.mce.bitmatrix import (
    bits_to_indices,
    degeneracy_order_packed,
    degeneracy_packed,
    enumerate_anchored_packed,
    expand_stack,
    pack_indices,
    popcount,
    popcount_rows,
    words_for,
)
from repro.mce.recursion import expand
from repro.mce.registry import ALGORITHM_NAMES, Combo, get_pivot_rule, run_combo

RNG_GRAPHS = [
    ("er", erdos_renyi(40, 0.25, seed=11)),
    ("ba", barabasi_albert(40, 4, seed=12)),
    ("sbm", stochastic_block_model([12, 12, 12], 0.6, 0.08, seed=13)),
    ("dense", erdos_renyi(30, 0.5, seed=14)),
]


class TestPackingHelpers:
    def test_words_for(self):
        assert words_for(0) == 0
        assert words_for(1) == 1
        assert words_for(64) == 1
        assert words_for(65) == 2
        assert words_for(200) == 4

    @pytest.mark.parametrize("n", [0, 1, 63, 64, 65, 130, 200])
    def test_pack_unpack_roundtrip(self, n):
        rng = np.random.default_rng(n)
        members = sorted(rng.choice(max(n, 1), size=n // 2, replace=False).tolist())
        mask = pack_indices(members, words_for(n))
        assert bits_to_indices(mask).tolist() == members
        assert popcount(mask) == len(members)

    def test_popcount_rows_matches_scalar(self):
        rng = np.random.default_rng(7)
        matrix = rng.integers(0, 2**63, size=(17, 3), dtype=np.uint64)
        rows = popcount_rows(matrix)
        assert rows.dtype == np.int64
        for i in range(17):
            assert rows[i] == popcount(matrix[i])
        assert popcount(matrix) == int(rows.sum())

    def test_empty_vectors(self):
        assert bits_to_indices(np.zeros(3, dtype=np.uint64)).tolist() == []
        assert popcount(np.zeros(0, dtype=np.uint64)) == 0
        assert popcount_rows(np.zeros((0, 0), dtype=np.uint64)).tolist() == []


class TestBackendParity:
    """The packed backend agrees with ``bitsets`` operation by operation."""

    @pytest.mark.parametrize("name,graph", CORPUS, ids=[n for n, _ in CORPUS])
    def test_set_algebra_matches_bitsets(self, name, graph):
        packed = build_backend(graph, "bitmatrix")
        reference = build_backend(graph, "bitsets")

        def as_set(backend, members):
            return set(backend.iterate(members))

        n = packed.n
        half = packed.make(range(0, n, 2))
        ref_half = reference.make(range(0, n, 2))
        assert as_set(packed, half) == as_set(reference, ref_half)
        assert packed.count(half) == reference.count(ref_half)
        assert as_set(packed, packed.full()) == as_set(reference, reference.full())
        for i in range(n):
            assert as_set(
                packed, packed.intersect_neighbors(half, i)
            ) == as_set(reference, reference.intersect_neighbors(ref_half, i))
            assert as_set(
                packed, packed.minus_neighbors(half, i)
            ) == as_set(reference, reference.minus_neighbors(ref_half, i))
            assert packed.degree(i) == reference.degree(i)
            assert packed.common_count(i, half) == reference.common_count(
                i, ref_half
            )
            assert packed.contains(half, i) == reference.contains(ref_half, i)

    def test_degrees_match_graph(self):
        graph = erdos_renyi(50, 0.2, seed=3)
        backend = build_backend(graph, "bitmatrix")
        for node in graph.nodes():
            assert backend.degree(backend.index_of(node)) == graph.degree(node)


class TestPackedKernels:
    """Stack, batched and generic kernels enumerate the same cliques.

    The generic recursion reference is forced by wrapping the pivot rule
    (unrecognized rules bypass ``expand_native``), so all three kernels
    are genuinely exercised; outputs are compared as sets because the
    batched kernel emits in level order, not depth-first order.
    """

    @pytest.mark.parametrize("algorithm", ALGORITHM_NAMES)
    @pytest.mark.parametrize("name,graph", RNG_GRAPHS, ids=[n for n, _ in RNG_GRAPHS])
    def test_three_kernels_agree(self, algorithm, name, graph):
        backend = build_backend(graph, "bitmatrix")
        rule = get_pivot_rule(algorithm)
        generic_rule = lambda b, p, x: rule(b, p, x)  # noqa: E731
        stack_out = list(
            expand_stack(backend, [], backend.full(), backend.empty(), rule)
        )
        batched_out = list(
            expand(backend, [], backend.full(), backend.empty(), rule)
        )
        generic_out = list(
            expand(backend, [], backend.full(), backend.empty(), generic_rule)
        )
        assert stack_out == generic_out  # stack kernel keeps DFS order
        reference = {frozenset(c) for c in generic_out}
        for out in (stack_out, batched_out):
            # Tuple member order may differ (the batched kernel breaks
            # pivot ties differently, so discovery paths differ), but
            # the clique sets must match exactly, with no duplicates.
            assert len(out) == len({frozenset(c) for c in out})
            assert {frozenset(c) for c in out} == reference
        assert {
            frozenset(backend.label(i) for i in c) for c in batched_out
        } == nx_cliques(graph)

    @pytest.mark.parametrize("algorithm", ALGORITHM_NAMES)
    def test_anchored_matches_native(self, algorithm):
        graph = erdos_renyi(36, 0.3, seed=23)
        backend = build_backend(graph, "bitmatrix")
        rule = get_pivot_rule(algorithm)
        n = backend.n
        candidates = backend.make(range(0, n, 2))
        excluded = backend.make(range(1, n, 2))
        for anchor in range(0, n, 5):
            packed = {
                frozenset(c)
                for c in enumerate_anchored_packed(
                    backend, anchor, candidates, excluded, rule
                )
            }
            native = {
                frozenset(c)
                for c in enumerate_anchored_native(
                    backend, anchor, candidates, excluded, rule
                )
            }
            assert packed == native
            stack = {
                frozenset(c)
                for c in expand_stack(
                    backend,
                    [anchor],
                    backend.intersect_neighbors(candidates, anchor),
                    backend.intersect_neighbors(excluded, anchor),
                    rule,
                )
            }
            assert stack == native

    def test_deep_block_does_not_recurse(self):
        # A long path graph drives the recursive kernel one level per
        # edge; the stack kernel must survive depths beyond any
        # practical recursion limit without touching sys.setrecursionlimit.
        n = 3000
        graph = Graph(edges=[(i, i + 1) for i in range(n - 1)])
        backend = build_backend(graph, "bitmatrix")
        rule = get_pivot_rule("tomita")
        cliques = list(
            expand_stack(backend, [], backend.full(), backend.empty(), rule)
        )
        assert len(cliques) == n - 1  # every edge is a maximal clique

    def test_clique_list_restored_on_exhaustion(self):
        graph = complete_graph(6)
        backend = build_backend(graph, "bitmatrix")
        prefix = [99]
        list(
            expand_stack(
                backend,
                prefix,
                backend.full(),
                backend.empty(),
                get_pivot_rule("tomita"),
            )
        )
        assert prefix == [99]


class TestCSRMaterialization:
    """CSR-direct bitmap extraction bypasses ``Graph`` without drift."""

    @pytest.mark.parametrize("name,graph", RNG_GRAPHS, ids=[n for n, _ in RNG_GRAPHS])
    def test_extract_matches_graph_built_bitmap(self, name, graph):
        csr = CSRGraph(graph)
        member_ids = np.arange(graph.num_nodes, dtype=np.int64)
        bitmap = extract_block_bitmap(csr.indptr, csr.indices, member_ids)
        reference = build_backend(graph, "bitmatrix")._matrix
        assert np.array_equal(bitmap, reference)

    def test_extract_subset_in_member_order(self):
        graph = erdos_renyi(40, 0.3, seed=31)
        csr = CSRGraph(graph)
        member_ids = np.array([7, 3, 19, 0, 25, 12], dtype=np.int64)
        bitmap = extract_block_bitmap(csr.indptr, csr.indices, member_ids)
        members = member_ids.tolist()
        for i, u in enumerate(members):
            expected = {
                j
                for j, v in enumerate(members)
                if graph.has_edge(csr.label(u), csr.label(v))
            }
            assert set(bits_to_indices(bitmap[i]).tolist()) == expected

    def test_scratch_reuses_and_rezeroes_buffers(self):
        graph = erdos_renyi(30, 0.4, seed=5)
        csr = CSRGraph(graph)
        scratch = BitmapScratch()
        members = np.arange(30, dtype=np.int64)
        first = extract_block_bitmap(csr.indptr, csr.indices, members, scratch)
        snapshot = first.copy()
        second = extract_block_bitmap(csr.indptr, csr.indices, members, scratch)
        assert second is first  # same cached buffer, not a reallocation
        assert np.array_equal(second, snapshot)  # rezeroed, then repacked
        assert scratch.nbytes() == first.nbytes
        # A different block size allocates a second cached buffer.
        other = extract_block_bitmap(
            csr.indptr, csr.indices, np.arange(12, dtype=np.int64), scratch
        )
        assert other.shape[0] == 12
        assert scratch.nbytes() == first.nbytes + other.nbytes

    def test_backend_from_bitmap_all_backends_agree(self):
        graph = erdos_renyi(33, 0.3, seed=41)
        bitmap = build_backend(graph, "bitmatrix")._matrix
        labels = list(graph.nodes())
        expected = nx_cliques(graph)
        for name in ("lists", "bitsets", "matrix", "bitmatrix"):
            backend = backend_from_bitmap(name, labels, bitmap)
            rule = get_pivot_rule("tomita")
            cliques = {
                frozenset(backend.label(i) for i in c)
                for c in expand(
                    backend, [], backend.full(), backend.empty(), rule
                )
            }
            assert cliques == expected, name


class TestPackedDegeneracy:
    @pytest.mark.parametrize("name,graph", RNG_GRAPHS, ids=[n for n, _ in RNG_GRAPHS])
    def test_matches_graph_cores(self, name, graph):
        backend = build_backend(graph, "bitmatrix")
        bitmap = backend._matrix
        assert degeneracy_packed(bitmap) == degeneracy(graph)
        order = degeneracy_order_packed(bitmap)
        assert sorted(order) == list(range(graph.num_nodes))
        # Tie-breaking may differ from the Graph peeling, but any valid
        # degeneracy order bounds every node's later-neighbour count by
        # the degeneracy (which is what the anchored sweep relies on).
        d = degeneracy(graph)
        position = {v: i for i, v in enumerate(order)}
        for v in order:
            later = int(
                sum(1 for u in bits_to_indices(bitmap[v]) if position[int(u)] > position[v])
            )
            assert later <= d

    def test_features_from_bitmap_identical(self):
        for _, graph in RNG_GRAPHS:
            bitmap = build_backend(graph, "bitmatrix")._matrix
            assert features_from_bitmap(bitmap) == BlockFeatures.of(graph)


class TestExtendedTree:
    def test_dense_leaves_pick_bitmatrix(self):
        tree = extended_tree()
        dense_small = BlockFeatures(
            num_nodes=200, num_edges=6000, density=0.3, degeneracy=60, d_star=70
        )
        assert select_combo(tree, dense_small) == Combo("tomita", "bitmatrix")
        medium = BlockFeatures(
            num_nodes=500, num_edges=8000, density=0.06, degeneracy=30, d_star=40
        )
        assert select_combo(tree, medium) == Combo("bkpivot", "bitmatrix")
        huge = BlockFeatures(
            num_nodes=9000, num_edges=500_000, density=0.01, degeneracy=30, d_star=90
        )
        assert select_combo(tree, huge) == Combo("xpivot", "bitmatrix")

    def test_sparse_leaf_unchanged(self):
        sparse = BlockFeatures(
            num_nodes=1000, num_edges=3000, density=0.006, degeneracy=5, d_star=10
        )
        assert select_combo(extended_tree(), sparse) == select_combo(
            paper_tree(), sparse
        )
        assert select_combo(extended_tree(), sparse) == Combo("xpivot", "lists")

    def test_paper_tree_never_picks_bitmatrix(self):
        # Paper-faithful runs must stay on the published three structures.
        tree = paper_tree()
        for features in (
            BlockFeatures(200, 6000, 0.3, 60, 70),
            BlockFeatures(500, 8000, 0.06, 30, 40),
            BlockFeatures(9000, 500_000, 0.01, 30, 90),
            BlockFeatures(1000, 3000, 0.006, 5, 10),
        ):
            assert select_combo(tree, features).backend != "bitmatrix"


@st.composite
def random_graphs(draw):
    """ER, BA or SBM graphs across a spread of sizes and densities."""
    family = draw(st.sampled_from(["er", "ba", "sbm"]))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    if family == "er":
        n = draw(st.integers(min_value=0, max_value=45))
        p = draw(st.floats(min_value=0.05, max_value=0.6))
        return erdos_renyi(n, p, seed=seed)
    if family == "ba":
        n = draw(st.integers(min_value=2, max_value=45))
        m = draw(st.integers(min_value=1, max_value=min(5, n - 1)))
        return barabasi_albert(n, m, seed=seed)
    sizes = draw(
        st.lists(st.integers(min_value=2, max_value=10), min_size=2, max_size=4)
    )
    p_in = draw(st.floats(min_value=0.3, max_value=0.9))
    p_out = draw(st.floats(min_value=0.0, max_value=0.2))
    return stochastic_block_model(sizes, p_in, p_out, seed=seed)


@settings(max_examples=40, deadline=None)
@given(random_graphs())
def test_bitmatrix_pinned_to_paper_backends(graph):
    """Property: every algorithm × bitmatrix equals the paper backends."""
    for algorithm in ALGORITHM_NAMES:
        packed = set(run_combo(graph, Combo(algorithm, "bitmatrix")))
        for reference in ("lists", "bitsets", "matrix"):
            assert packed == set(run_combo(graph, Combo(algorithm, reference)))


class TestGoldenWithBitmatrix:
    """The forced-bitmatrix driver reproduces every frozen clique census."""

    @pytest.mark.parametrize(
        "name", ["facebook", "google+", "twitter1", "twitter2", "twitter3"]
    )
    def test_dataset_standin(self, name):
        from collections import Counter

        from repro.core.driver import find_max_cliques
        from repro.graph.datasets import load_dataset

        fixture = Path(__file__).parent / "golden" / (
            name.replace("+", "plus") + ".json"
        )
        frozen = json.loads(fixture.read_text())
        graph = load_dataset(name)
        result = find_max_cliques(
            graph, frozen["m"], combo=Combo("tomita", "bitmatrix")
        )
        histogram = {
            str(size): count
            for size, count in sorted(
                Counter(len(c) for c in result.cliques).items()
            )
        }
        assert result.num_cliques == frozen["cliques"]["count"]
        assert result.max_clique_size() == frozen["cliques"]["max_size"]
        assert histogram == frozen["cliques"]["size_histogram"]

"""Unit tests for MCE recursion instrumentation."""

from __future__ import annotations

from repro.graph.generators import complete_graph, erdos_renyi
from repro.mce.instrumentation import (
    CountingRule,
    collect_cliques_with_profile,
    profile_rule,
)
from repro.mce.recursion import no_pivot, tomita_pivot
from repro.mce.tomita import tomita


class TestCountingRule:
    def test_counts_and_delegates(self):
        counting = CountingRule(tomita_pivot)
        g = complete_graph(4)
        cliques, profile = collect_cliques_with_profile(g, counting.rule)
        assert cliques == [frozenset(range(4))]
        assert profile.internal_nodes >= 1

    def test_reset(self):
        counting = CountingRule(tomita_pivot)
        profile_graph = complete_graph(3)
        from repro.mce.backends import build_backend
        from repro.mce.recursion import enumerate_all

        list(enumerate_all(build_backend(profile_graph, "bitsets"), counting))
        assert counting.calls > 0
        counting.reset()
        assert counting.calls == 0


class TestProfileRule:
    def test_pivot_prunes_vs_plain(self):
        g = erdos_renyi(25, 0.5, seed=5)
        plain = profile_rule(g, no_pivot)
        pivoted = profile_rule(g, tomita_pivot)
        assert plain.cliques == pivoted.cliques
        assert pivoted.internal_nodes < plain.internal_nodes

    def test_clique_count_matches_enumeration(self):
        g = erdos_renyi(20, 0.3, seed=6)
        profile = profile_rule(g, tomita_pivot)
        assert profile.cliques == len(list(tomita(g)))

    def test_nodes_per_clique(self):
        g = complete_graph(5)
        profile = profile_rule(g, tomita_pivot)
        assert profile.nodes_per_clique == profile.internal_nodes

    def test_empty_graph(self):
        from repro.graph.adjacency import Graph

        profile = profile_rule(Graph(), tomita_pivot)
        assert profile.internal_nodes == 0
        assert profile.cliques == 0
        assert profile.nodes_per_clique == 0.0

    def test_collect_matches_profile(self):
        g = erdos_renyi(18, 0.4, seed=7)
        cliques, profile = collect_cliques_with_profile(g, tomita_pivot)
        assert len(cliques) == profile.cliques
        assert set(cliques) == set(tomita(g))

"""Unit tests for the branch-and-bound maximum clique solvers."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import CORPUS
from repro.errors import BoundNotMetError
from repro.graph.adjacency import Graph
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi,
    social_network,
)
from repro.mce.maximum import (
    clique_upper_bound_packed,
    coloring_bound_packed,
    maximum_clique,
    maximum_clique_bitset,
    maximum_clique_size,
)
from repro.mce.tomita import tomita

def brute_maximum_size(graph: Graph) -> int:
    return max((len(c) for c in tomita(graph)), default=0)

class TestCorrectness:
    @pytest.mark.parametrize(
        "name,graph", CORPUS, ids=[name for name, _ in CORPUS]
    )
    def test_size_matches_enumeration(self, name, graph):
        assert maximum_clique_size(graph) == brute_maximum_size(graph)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_graphs(self, seed):
        g = erdos_renyi(35, 0.4, seed=seed)
        found = maximum_clique(g)
        assert g.is_clique(found)
        assert len(found) == brute_maximum_size(g)

    def test_result_is_a_clique_of_the_graph(self):
        g = social_network(200, attachment=3, planted_cliques=(11,), seed=5)
        found = maximum_clique(g)
        assert g.is_clique(found)
        assert len(found) == 11

    def test_empty_graph(self):
        assert maximum_clique(Graph()) == frozenset()
        assert maximum_clique_size(Graph()) == 0

    def test_edgeless_graph(self):
        found = maximum_clique(Graph(nodes=[1, 2, 3]))
        assert len(found) == 1

    def test_complete_graph(self):
        assert maximum_clique(complete_graph(9)) == frozenset(range(9))

    def test_cycle(self):
        assert maximum_clique_size(cycle_graph(7)) == 2

    def test_string_labels(self):
        g = Graph(edges=[("a", "b"), ("b", "c"), ("a", "c"), ("c", "d")])
        assert maximum_clique(g) == frozenset({"a", "b", "c"})

class TestBitsetParity:
    """The dict-of-bitsets solver must agree with the packed solver."""

    @pytest.mark.parametrize(
        "name,graph", CORPUS, ids=[name for name, _ in CORPUS]
    )
    def test_corpus(self, name, graph):
        found = maximum_clique_bitset(graph)
        assert graph.is_clique(found)
        assert len(found) == maximum_clique_size(graph)

    @pytest.mark.parametrize("seed", range(4))
    def test_random(self, seed):
        g = erdos_renyi(40, 0.35, seed=seed + 100)
        assert len(maximum_clique_bitset(g)) == maximum_clique_size(g)

def _packed(graph: Graph):
    from repro.mce.bitmatrix import BitMatrixBackend

    return BitMatrixBackend(graph)._matrix  # noqa: SLF001 - test access

class TestPackedBounds:
    def test_coloring_bound_dominates_clique_number(self):
        for seed in range(4):
            g = erdos_renyi(30, 0.4, seed=seed)
            matrix = _packed(g)
            omega = brute_maximum_size(g)
            assert coloring_bound_packed(matrix) >= omega
            assert clique_upper_bound_packed(matrix) >= omega

    def test_complete_graph_bound_tight(self):
        assert clique_upper_bound_packed(_packed(complete_graph(8))) == 8

    def test_empty_matrix(self):
        assert clique_upper_bound_packed(_packed(Graph())) == 0

class TestLowerBound:
    def test_certified_bound_prunes_but_keeps_answer(self):
        g = erdos_renyi(30, 0.4, seed=7)
        true_size = brute_maximum_size(g)
        found = maximum_clique(g, lower_bound=true_size - 1)
        assert len(found) == true_size

    def test_bound_at_true_size_returns_witness(self):
        # Regression: lower_bound == omega(G) used to return frozenset()
        # (the pruning bound swallowed the only witness); callers now
        # always get a clique of the promised size.
        g = complete_graph(5)
        found = maximum_clique(g, lower_bound=5)
        assert found == frozenset(range(5))

    def test_unmet_bound_raises(self):
        g = complete_graph(5)
        with pytest.raises(BoundNotMetError) as info:
            maximum_clique(g, lower_bound=6)
        assert info.value.lower_bound == 6
        assert info.value.best_found == 5

    def test_unmet_bound_on_empty_graph(self):
        with pytest.raises(BoundNotMetError):
            maximum_clique(Graph(), lower_bound=1)

    def test_negative_bound_rejected(self):
        with pytest.raises(ValueError):
            maximum_clique(Graph(), lower_bound=-1)

@st.composite
def small_graphs(draw):
    n = draw(st.integers(min_value=1, max_value=18))
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    chosen = draw(
        st.lists(st.sampled_from(pairs), unique=True, max_size=60)
        if pairs
        else st.just([])
    )
    return Graph(nodes=range(n), edges=chosen)

class TestHypothesisParity:
    @given(small_graphs())
    @settings(max_examples=60, deadline=None)
    def test_bitmatrix_bitset_enumeration_agree(self, graph):
        expected = brute_maximum_size(graph)
        packed = maximum_clique(graph)
        bitset = maximum_clique_bitset(graph)
        assert graph.is_clique(packed)
        assert graph.is_clique(bitset)
        assert len(packed) == len(bitset) == expected

class TestScale:
    def test_dataset_standin(self):
        from repro.graph.datasets import load_dataset

        g = load_dataset("google+")
        found = maximum_clique(g)
        assert g.is_clique(found)
        assert len(found) == 18  # the calibrated maximum

"""Unit tests for the branch-and-bound maximum clique solver."""

from __future__ import annotations

import pytest

from conftest import CORPUS
from repro.graph.adjacency import Graph
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi,
    social_network,
)
from repro.mce.maximum import maximum_clique, maximum_clique_size
from repro.mce.tomita import tomita


def brute_maximum_size(graph: Graph) -> int:
    return max((len(c) for c in tomita(graph)), default=0)


class TestCorrectness:
    @pytest.mark.parametrize(
        "name,graph", CORPUS, ids=[name for name, _ in CORPUS]
    )
    def test_size_matches_enumeration(self, name, graph):
        assert maximum_clique_size(graph) == brute_maximum_size(graph)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_graphs(self, seed):
        g = erdos_renyi(35, 0.4, seed=seed)
        found = maximum_clique(g)
        assert g.is_clique(found)
        assert len(found) == brute_maximum_size(g)

    def test_result_is_a_clique_of_the_graph(self):
        g = social_network(200, attachment=3, planted_cliques=(11,), seed=5)
        found = maximum_clique(g)
        assert g.is_clique(found)
        assert len(found) == 11

    def test_empty_graph(self):
        assert maximum_clique(Graph()) == frozenset()
        assert maximum_clique_size(Graph()) == 0

    def test_edgeless_graph(self):
        found = maximum_clique(Graph(nodes=[1, 2, 3]))
        assert len(found) == 1

    def test_complete_graph(self):
        assert maximum_clique(complete_graph(9)) == frozenset(range(9))

    def test_cycle(self):
        assert maximum_clique_size(cycle_graph(7)) == 2

    def test_string_labels(self):
        g = Graph(edges=[("a", "b"), ("b", "c"), ("a", "c"), ("c", "d")])
        assert maximum_clique(g) == frozenset({"a", "b", "c"})


class TestLowerBound:
    def test_certified_bound_prunes_but_keeps_answer(self):
        g = erdos_renyi(30, 0.4, seed=7)
        true_size = brute_maximum_size(g)
        found = maximum_clique(g, lower_bound=true_size - 1)
        assert len(found) == true_size

    def test_bound_at_true_size_returns_empty(self):
        g = complete_graph(5)
        assert maximum_clique(g, lower_bound=5) == frozenset()

    def test_negative_bound_rejected(self):
        with pytest.raises(ValueError):
            maximum_clique(Graph(), lower_bound=-1)


class TestScale:
    def test_dataset_standin(self):
        from repro.graph.datasets import load_dataset

        g = load_dataset("google+")
        found = maximum_clique(g)
        assert g.is_clique(found)
        assert len(found) == 18  # the calibrated maximum

"""Unit tests for backend memory accounting."""

from __future__ import annotations

import pytest

from repro.errors import AlgorithmNotFoundError
from repro.graph.adjacency import Graph
from repro.graph.generators import complete_graph, erdos_renyi
from repro.mce.backends import build_backend
from repro.mce.memory import (
    backend_memory_table,
    estimate_backend_bytes,
    max_block_nodes_for_memory,
    measured_backend_bytes,
)


class TestEstimates:
    def test_matrix_quadratic(self):
        g_small = complete_graph(10)
        g_big = complete_graph(20)
        small = estimate_backend_bytes(g_small, "matrix")
        big = estimate_backend_bytes(g_big, "matrix")
        assert big == 4 * small

    def test_bitsets_quadratic_ish(self):
        small = estimate_backend_bytes(complete_graph(30), "bitsets")
        big = estimate_backend_bytes(complete_graph(120), "bitsets")
        assert big > 4 * small  # superlinear

    def test_lists_linear_in_edges(self):
        sparse = erdos_renyi(100, 0.02, seed=1)
        dense = erdos_renyi(100, 0.4, seed=1)
        assert estimate_backend_bytes(dense, "lists") > estimate_backend_bytes(
            sparse, "lists"
        )

    def test_unknown_backend(self):
        with pytest.raises(AlgorithmNotFoundError):
            estimate_backend_bytes(Graph(), "trie")


class TestMeasurement:
    def test_matrix_exact(self):
        g = complete_graph(16)
        backend = build_backend(g, "matrix")
        assert measured_backend_bytes(backend) == 16 * 16

    def test_models_in_right_ballpark(self):
        # The closed-form model should land within 3x of the measured
        # footprint on a mid-sized block.
        g = erdos_renyi(80, 0.2, seed=2)
        for name, modelled, measured in backend_memory_table(g):
            assert measured > 0, name
            ratio = modelled / measured
            assert 1 / 3 < ratio < 3, (name, modelled, measured)

    def test_sparse_graph_lists_beat_matrix(self):
        # The crossover needs enough nodes for the quadratic matrix to
        # overtake the per-set constant overhead of the list backend.
        g = erdos_renyi(800, 0.005, seed=3)
        table = {name: measured for name, _, measured in backend_memory_table(g)}
        assert table["lists"] < table["matrix"]


class TestInverse:
    def test_matrix_inverse(self):
        # n^2 <= budget: 1 MiB -> 1024 nodes.
        assert max_block_nodes_for_memory(1024 * 1024, "matrix") == 1024

    def test_monotone_in_budget(self):
        small = max_block_nodes_for_memory(10_000, "bitsets")
        big = max_block_nodes_for_memory(1_000_000, "bitsets")
        assert big > small

    def test_estimate_honours_inverse(self):
        budget = 500_000
        for backend in ("matrix", "bitsets"):
            n = max_block_nodes_for_memory(budget, backend)
            assert estimate_backend_bytes(complete_graph(0), backend) == 0 or True
            # The chosen n fits; n + 1 does not.
            from repro.mce.memory import _SizeOnly

            assert estimate_backend_bytes(_SizeOnly(n), backend) <= budget  # type: ignore[arg-type]
            assert estimate_backend_bytes(_SizeOnly(n + 1), backend) > budget  # type: ignore[arg-type]

    def test_validation(self):
        with pytest.raises(ValueError):
            max_block_nodes_for_memory(0, "matrix")
        with pytest.raises(AlgorithmNotFoundError):
            max_block_nodes_for_memory(100, "rope")

"""Unit tests for the clique-output validators."""

from __future__ import annotations

from repro.graph.adjacency import Graph
from repro.graph.generators import complete_graph
from repro.mce.verify import (
    check_mce_output,
    find_extension,
    is_clique,
    is_maximal_clique,
    missing_cliques,
    spurious_cliques,
)


def triangle_plus_tail() -> Graph:
    """Triangle 0-1-2 with tail 2-3."""
    return Graph(edges=[(0, 1), (1, 2), (0, 2), (2, 3)])


class TestIsMaximal:
    def test_maximal(self):
        assert is_maximal_clique(triangle_plus_tail(), {0, 1, 2})

    def test_not_maximal(self):
        assert not is_maximal_clique(triangle_plus_tail(), {0, 1})

    def test_not_a_clique(self):
        assert not is_maximal_clique(triangle_plus_tail(), {0, 3})

    def test_empty_never_maximal(self):
        assert not is_maximal_clique(triangle_plus_tail(), set())

    def test_singleton_isolated(self):
        g = Graph(nodes=[7])
        assert is_maximal_clique(g, {7})

    def test_singleton_with_neighbor(self):
        g = Graph(edges=[(1, 2)])
        assert not is_maximal_clique(g, {1})

    def test_pendant_edge(self):
        assert is_maximal_clique(triangle_plus_tail(), {2, 3})


class TestFindExtension:
    def test_extension_found(self):
        assert find_extension(triangle_plus_tail(), {0, 1}) == 2

    def test_no_extension(self):
        assert find_extension(triangle_plus_tail(), {0, 1, 2}) is None

    def test_empty_set_extended_by_any_node(self):
        g = Graph(nodes=[5])
        assert find_extension(g, set()) == 5

    def test_empty_set_empty_graph(self):
        assert find_extension(Graph(), set()) is None


class TestCheckOutput:
    def test_clean(self):
        g = triangle_plus_tail()
        assert check_mce_output(g, [frozenset({0, 1, 2}), frozenset({2, 3})]) == []

    def test_duplicate_detected(self):
        g = complete_graph(3)
        problems = check_mce_output(
            g, [frozenset({0, 1, 2}), frozenset({0, 1, 2})]
        )
        assert any("duplicate" in p for p in problems)

    def test_non_clique_detected(self):
        g = triangle_plus_tail()
        problems = check_mce_output(g, [frozenset({0, 3})])
        assert any("not a clique" in p for p in problems)

    def test_non_maximal_detected(self):
        g = triangle_plus_tail()
        problems = check_mce_output(g, [frozenset({0, 1})])
        assert any("not maximal" in p for p in problems)


class TestSetComparisons:
    def test_missing(self):
        ref = [frozenset({1, 2}), frozenset({3, 4})]
        assert missing_cliques(ref, [frozenset({1, 2})]) == {frozenset({3, 4})}

    def test_spurious(self):
        g = triangle_plus_tail()
        spurious = spurious_cliques(g, [frozenset({0, 1}), frozenset({2, 3})])
        assert spurious == {frozenset({0, 1})}

    def test_is_clique_delegates(self):
        assert is_clique(complete_graph(3), [0, 1, 2])

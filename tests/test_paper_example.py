"""The paper's worked example (Figures 1 and 2), end to end.

Section 2 walks the reader through the network of Figure 1 with m = 5.
These tests pin every claim the paper makes about that example.
"""

from __future__ import annotations

from conftest import FIGURE1_CLIQUES
from repro.core.blocks import build_blocks
from repro.core.driver import find_max_cliques
from repro.core.feasibility import cut
from repro.graph.views import induced_subgraph


class TestSection2Claims:
    def test_hub_degrees(self, figure1):
        # "the red-coloured nodes D, S, and E of degree 7, 5, and 5".
        assert figure1.degree("D") == 7
        assert figure1.degree("S") == 5
        assert figure1.degree("E") == 5

    def test_cut_identifies_hubs(self, figure1):
        _feasible, hubs = cut(figure1, 5)
        assert set(hubs) == {"D", "S", "E"}

    def test_cf_examples(self, figure1):
        # "Cf includes the cliques {A,J,H} and {H,F,D}".
        result = find_max_cliques(figure1, 5)
        feasible_cliques = set(result.feasible_cliques())
        assert frozenset({"A", "J", "H"}) in feasible_cliques
        assert frozenset({"H", "F", "D"}) in feasible_cliques

    def test_gh_is_the_triangle(self, figure1):
        # "Gh consists only of the nodes D, S, E and of the edges between
        # them ... Gh is the cycle D, S, E and its maximum degree is two."
        _feasible, hubs = cut(figure1, 5)
        gh = induced_subgraph(figure1, hubs)
        assert gh.num_nodes == 3
        assert gh.num_edges == 3
        assert gh.max_degree() == 2

    def test_ch_contains_hub_triangle(self, figure1):
        # "Ch includes the clique {D,S,E}".
        result = find_max_cliques(figure1, 5)
        assert frozenset({"D", "S", "E"}) in set(result.hub_cliques())

    def test_complete_output(self, figure1):
        result = find_max_cliques(figure1, 5)
        assert set(result.cliques) == FIGURE1_CLIQUES

    def test_two_recursion_levels(self, figure1):
        # One pass over the feasible nodes, one over the hub triangle.
        result = find_max_cliques(figure1, 5)
        assert result.recursion_depth == 2
        assert result.levels[1].num_nodes == 3


class TestSection3Claims:
    def test_hubs_never_kernel_nodes(self, figure1):
        # "the hub nodes (D, E, and S) never occur as kernel nodes in any
        # block.  Instead, their neighborhood has been distributed among
        # the various blocks."
        feasible, _hubs = cut(figure1, 5)
        blocks = build_blocks(figure1, feasible, 5)
        for block in blocks:
            assert not set(block.kernel) & {"D", "S", "E"}

    def test_feasible_nodes_kernel_exactly_once(self, figure1):
        # "all feasible nodes occur in exactly one block as kernel nodes".
        feasible, _hubs = cut(figure1, 5)
        blocks = build_blocks(figure1, feasible, 5)
        kernels = [n for b in blocks for n in b.kernel]
        assert sorted(kernels) == sorted(feasible)

    def test_every_maximal_clique_in_some_block_or_hub_graph(self, figure1):
        # "every maximal clique occurs in at least one block" — for
        # feasible-touching cliques; {D,S,E} lives in the hub recursion.
        feasible, hubs = cut(figure1, 5)
        blocks = build_blocks(figure1, feasible, 5)
        for clique in FIGURE1_CLIQUES:
            if clique == frozenset({"D", "S", "E"}):
                continue
            assert any(
                clique <= set(block.graph.nodes()) for block in blocks
            ), clique

    def test_block_size_limit_respected(self, figure1):
        feasible, _hubs = cut(figure1, 5)
        blocks = build_blocks(figure1, feasible, 5)
        assert all(block.size <= 5 for block in blocks)

"""Property-based tests (hypothesis) for the core invariants.

These generate random graphs and parameters and assert the paper's
structural guarantees hold universally: output equals ground truth,
blocks satisfy their invariants, the filter preserves Lemma 1, cores
behave like cores, serialisation round-trips.
"""

from __future__ import annotations

import warnings

from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import nx_cliques
from repro.core.blocks import build_blocks, validate_blocks
from repro.core.driver import find_max_cliques
from repro.core.feasibility import cut, is_feasible
from repro.core.filtering import filter_contained
from repro.graph.adjacency import Graph
from repro.graph.cores import core_numbers, degeneracy, degeneracy_ordering, k_core
from repro.graph.io import read_triples, write_triples
from repro.graph.properties import d_star
from repro.mce.tomita import tomita
from repro.mce.verify import is_maximal_clique

import io


@st.composite
def graphs(draw, max_nodes: int = 14):
    """A random simple graph, possibly with isolated nodes."""
    n = draw(st.integers(min_value=0, max_value=max_nodes))
    edges = []
    for u in range(n):
        for v in range(u + 1, n):
            if draw(st.booleans()):
                edges.append((u, v))
    return Graph(edges=edges, nodes=range(n))


@st.composite
def cliques_families(draw):
    """A list of node sets over a small universe."""
    count = draw(st.integers(min_value=0, max_value=8))
    return [
        frozenset(
            draw(
                st.sets(
                    st.integers(min_value=0, max_value=9), min_size=1, max_size=5
                )
            )
        )
        for _ in range(count)
    ]


@settings(max_examples=60, deadline=None)
@given(graphs(), st.integers(min_value=2, max_value=20))
def test_find_max_cliques_equals_ground_truth(graph, m):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        result = find_max_cliques(graph, m)
    assert len(result.cliques) == len(set(result.cliques))
    assert set(result.cliques) == nx_cliques(graph)


@settings(max_examples=60, deadline=None)
@given(graphs(), st.integers(min_value=2, max_value=20))
def test_every_output_clique_is_maximal(graph, m):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        result = find_max_cliques(graph, m)
    for clique in result.cliques:
        assert is_maximal_clique(graph, clique)


@settings(max_examples=60, deadline=None)
@given(graphs(), st.integers(min_value=2, max_value=20))
def test_blocks_satisfy_invariants(graph, m):
    feasible, _hubs = cut(graph, m)
    blocks = build_blocks(graph, feasible, m)
    validate_blocks(graph, blocks, feasible, m)


@settings(max_examples=60, deadline=None)
@given(graphs(), st.integers(min_value=1, max_value=20))
def test_cut_is_partition_by_degree(graph, m):
    feasible, hubs = cut(graph, m)
    assert set(feasible) | set(hubs) == set(graph.nodes())
    assert not set(feasible) & set(hubs)
    for node in feasible:
        assert graph.degree(node) < m
    for node in hubs:
        assert graph.degree(node) >= m


@settings(max_examples=60, deadline=None)
@given(graphs(), st.integers(min_value=1, max_value=20))
def test_feasibility_matches_closed_neighborhood(graph, m):
    for node in graph.nodes():
        expected = len(graph.closed_neighborhood(node)) <= m
        assert is_feasible([node], graph, m) == expected


@settings(max_examples=50, deadline=None)
@given(cliques_families(), cliques_families())
def test_filter_keeps_exactly_uncontained(candidates, reference):
    kept = filter_contained(candidates, reference)
    kept_set = set(kept)
    # No false survivors and no false drops:
    for candidate in candidates:
        contained = any(candidate <= ref for ref in reference)
        if contained:
            assert candidate not in kept_set
        else:
            assert candidate in kept_set


@settings(max_examples=60, deadline=None)
@given(graphs())
def test_core_numbers_are_cores(graph):
    numbers = core_numbers(graph)
    d = degeneracy(graph)
    for k in range(d + 2):
        core = k_core(graph, k)
        # Every node in the k-core has >= k neighbours inside it.
        for node in core:
            inside = sum(1 for nb in graph.neighbors(node) if nb in core)
            assert inside >= k
        assert core == frozenset(n for n, c in numbers.items() if c >= k)


@settings(max_examples=60, deadline=None)
@given(graphs())
def test_degeneracy_ordering_property(graph):
    order = degeneracy_ordering(graph)
    assert sorted(order) == sorted(graph.nodes())
    d = degeneracy(graph)
    position = {node: i for i, node in enumerate(order)}
    for node in order:
        later = sum(
            1 for nb in graph.neighbors(node) if position[nb] > position[node]
        )
        assert later <= d


@settings(max_examples=60, deadline=None)
@given(graphs())
def test_d_star_definition(graph):
    value = d_star(graph)
    at_least = sum(1 for n in graph.nodes() if graph.degree(n) >= value)
    assert at_least >= value
    above = sum(1 for n in graph.nodes() if graph.degree(n) >= value + 1)
    assert above < value + 1


@settings(max_examples=50, deadline=None)
@given(graphs())
def test_triple_roundtrip(graph):
    buffer = io.StringIO()
    write_triples(graph, buffer)
    buffer.seek(0)
    assert read_triples(buffer) == graph


@settings(max_examples=40, deadline=None)
@given(graphs())
def test_tomita_output_is_cover_of_edges(graph):
    # Every edge and every node appears in at least one maximal clique.
    cliques = list(tomita(graph))
    covered_nodes = set().union(*cliques) if cliques else set()
    assert covered_nodes == set(graph.nodes())
    for u, v in graph.edges():
        assert any(u in c and v in c for c in cliques)


@settings(max_examples=30, deadline=None)
@given(graphs(max_nodes=10), st.integers(min_value=2, max_value=12))
def test_audit_passes_on_every_driver_output(graph, m):
    from repro.core.audit import audit_result

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        result = find_max_cliques(graph, m)
    report = audit_result(graph, result, check_completeness=True)
    assert report.ok, report.problems


@settings(max_examples=40, deadline=None)
@given(graphs(), st.integers(min_value=2, max_value=12))
def test_provenance_levels_are_hub_only_below_top(graph, m):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        result = find_max_cliques(graph, m)
    feasible, _hubs = cut(graph, m)
    feasible_set = set(feasible)
    for clique, level in result.provenance.items():
        if level == 0:
            assert clique & feasible_set or not feasible_set
        else:
            assert not clique & feasible_set

"""Property-based tests for the extension modules.

Hypothesis-driven invariants for the Section 8 extensions and the
auxiliary substrates added on top of the first pass: incremental
maintenance, k-plexes, CSR snapshots, event simulation, and the uniform
block strategy.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.blocks import build_blocks
from repro.core.feasibility import cut
from repro.core.uniform_blocks import build_uniform_blocks
from repro.core.blocks import validate_blocks
from repro.distributed.cluster import ClusterSpec
from repro.distributed.events import simulate_events
from repro.distributed.scheduler import Task
from repro.graph.adjacency import Graph
from repro.graph.csr import CSRGraph
from repro.incremental.maintainer import IncrementalMCE
from repro.mce.tomita import tomita
from repro.relaxed.kplex import is_kplex, maximal_kplexes, minimum_k


@st.composite
def graphs(draw, max_nodes: int = 10):
    n = draw(st.integers(min_value=0, max_value=max_nodes))
    edges = []
    for u in range(n):
        for v in range(u + 1, n):
            if draw(st.booleans()):
                edges.append((u, v))
    return Graph(edges=edges, nodes=range(n))


@st.composite
def edge_streams(draw, n: int = 8, length: int = 12):
    ops = []
    for _ in range(draw(st.integers(min_value=0, max_value=length))):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u != v:
            ops.append((u, v))
    return ops


@settings(max_examples=40, deadline=None)
@given(graphs(), edge_streams())
def test_incremental_tracks_oracle(graph, stream):
    tracker = IncrementalMCE(graph)
    for u, v in stream:
        if tracker.graph.has_edge(u, v):
            tracker.delete_edge(u, v)
        else:
            tracker.insert_edge(u, v)
        assert tracker.cliques == set(tomita(tracker.graph))


@settings(max_examples=30, deadline=None)
@given(graphs(max_nodes=8), st.integers(min_value=1, max_value=3))
def test_kplex_outputs_are_maximal_kplexes(graph, k):
    nodes = set(graph.nodes())
    for plex in maximal_kplexes(graph, k):
        assert is_kplex(graph, plex, k)
        for extra in nodes - plex:
            assert not is_kplex(graph, plex | {extra}, k)


@settings(max_examples=30, deadline=None)
@given(graphs(max_nodes=8))
def test_kplex_k1_is_mce(graph):
    assert set(maximal_kplexes(graph, 1)) == set(tomita(graph))


@settings(max_examples=30, deadline=None)
@given(graphs(max_nodes=8), st.integers(min_value=1, max_value=3))
def test_minimum_k_consistent_with_is_kplex(graph, k):
    for plex in maximal_kplexes(graph, k):
        smallest = minimum_k(graph, plex)
        assert smallest <= k
        assert is_kplex(graph, plex, smallest)
        if smallest > 1:
            assert not is_kplex(graph, plex, smallest - 1)


@settings(max_examples=50, deadline=None)
@given(graphs(max_nodes=12))
def test_csr_roundtrip(graph):
    csr = CSRGraph(graph)
    assert csr.to_graph() == graph
    assert csr.num_edges == graph.num_edges
    for node in graph.nodes():
        assert csr.degree(node) == graph.degree(node)
        assert set(csr.neighbors(node)) == set(graph.neighbors(node))


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.floats(min_value=0.0, max_value=10.0), max_size=12),
    st.integers(min_value=1, max_value=6),
    st.floats(min_value=0.0, max_value=0.5),
    st.integers(min_value=0, max_value=5),
)
def test_event_simulation_completes_everything(costs, workers, rate, seed):
    tasks = [Task(task_id=i, cost_seconds=c) for i, c in enumerate(costs)]
    cluster = ClusterSpec(
        machines=1,
        workers_per_machine=workers,
        latency_seconds=0.0,
        bandwidth_bytes_per_second=1e12,
    )
    result = simulate_events(
        tasks, cluster, failure_rate=rate, seed=seed, max_attempts=200
    )
    assert result.completed_task_ids() == {task.task_id for task in tasks}
    assert len(result.completions) == len(tasks)
    serial = sum(task.cost_seconds for task in tasks)
    assert result.makespan >= serial / workers - 1e-9


@settings(max_examples=40, deadline=None)
@given(graphs(max_nodes=12), st.integers(min_value=2, max_value=12))
def test_uniform_blocks_satisfy_invariants(graph, m):
    feasible, _hubs = cut(graph, m)
    blocks = build_uniform_blocks(graph, feasible, m)
    validate_blocks(graph, blocks, feasible, m)


@settings(max_examples=40, deadline=None)
@given(graphs(max_nodes=12), st.integers(min_value=2, max_value=12))
def test_both_block_strategies_cover_same_cliques(graph, m):
    from repro.core.block_analysis import analyze_blocks

    feasible, _hubs = cut(graph, m)
    dense, _ = analyze_blocks(build_blocks(graph, feasible, m))
    uniform, _ = analyze_blocks(build_uniform_blocks(graph, feasible, m))
    assert set(dense) == set(uniform)


@settings(max_examples=30, deadline=None)
@given(graphs(max_nodes=12), st.integers(min_value=1, max_value=5))
def test_streaming_partitions_are_total_and_balanced(graph, parts):
    from repro.distributed.streaming import partition_hash, partition_ldg

    for partition in (
        partition_ldg(graph, parts),
        partition_hash(graph, parts),
    ):
        assert set(partition.assignment) == set(graph.nodes())
        assert all(0 <= p < parts for p in partition.assignment.values())
        assert sum(partition.part_sizes()) == graph.num_nodes
        assert 0.0 <= partition.edge_cut(graph) <= 1.0


@settings(max_examples=30, deadline=None)
@given(graphs(max_nodes=9), st.integers(min_value=1, max_value=3))
def test_distance_kcliques_match_power_graph_mce(graph, k):
    from repro.relaxed.distance import graph_power, k_cliques

    power = graph_power(graph, k)
    assert set(k_cliques(graph, k)) == set(tomita(power))


@settings(max_examples=30, deadline=None)
@given(graphs(max_nodes=9))
def test_kclans_contained_in_kcliques(graph):
    from repro.relaxed.distance import k_clans, k_cliques

    assert set(k_clans(graph, 2)) <= set(k_cliques(graph, 2))

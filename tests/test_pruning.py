"""Bound-driven pruning: floors, block/anchor skipping, parallel search.

The soundness claim under test everywhere here: enumerating with
``min_clique_size=f`` must produce *exactly* the cliques of an unfloored
run that have at least ``f`` members — pruning may only remove work,
never answers.  See ``docs/maximum.md`` for the bound math.
"""

from __future__ import annotations

import pytest

from differential import (
    canonical_cliques,
    run_driver,
    run_driver_floor,
)
from repro.cli import main
from repro.core.driver import find_max_cliques
from repro.distributed.executor import (
    SharedMemoryExecutor,
    parallel_maximum_clique,
)
from repro.errors import BoundNotMetError
from repro.graph.adjacency import Graph
from repro.graph.generators import erdos_renyi, social_network
from repro.graph.io import write_triples
from repro.mce.maximum import maximum_clique

# Modes covering every floor code path: serial in-process, the explicit
# executors (including forced batch/split dispatch), the streaming
# pipeline, and the harness's shared-prune alias.
FLOOR_MODES = (
    "serial",
    "serial-batch",
    "process",
    "shared",
    "shared-prune",
    "shared-split",
    "shared-batch",
    "shared-pipeline",
    "shared-pipeline-split",
    "shared-pipeline-batch",
)


@pytest.fixture(scope="module")
def planted():
    return social_network(260, attachment=3, planted_cliques=(11, 8), seed=9)


class TestFloorParity:
    @pytest.mark.parametrize("mode", FLOOR_MODES)
    def test_floored_equals_filtered(self, mode, planted):
        m = 40
        unfloored = run_driver("serial", planted, m)
        for floor in (4, 8, 11):
            expected = tuple(c for c in unfloored if len(c) >= floor)
            assert run_driver_floor(mode, planted, m, floor) == expected

    def test_floor_above_omega_yields_nothing(self, planted):
        omega = len(maximum_clique(planted))
        result = find_max_cliques(planted, 40, min_clique_size=omega + 1)
        assert result.cliques == []

    def test_floor_of_one_is_a_no_op(self, planted):
        assert run_driver_floor("serial", planted, 40, 1) == run_driver(
            "serial", planted, 40
        )

    def test_negative_floor_rejected(self, planted):
        with pytest.raises(ValueError):
            find_max_cliques(planted, 40, min_clique_size=-1)


class TestPruningDigest:
    def test_blocks_are_skipped_and_topk_is_identical(self, planted):
        m = 40
        baseline = find_max_cliques(planted, m)
        floor = baseline.max_clique_size() - 2
        floored = find_max_cliques(planted, m, min_clique_size=floor)
        pruning = floored.pruning
        assert pruning is not None
        assert pruning["min_clique_size"] == floor
        assert pruning["blocks_skipped"] > 0
        assert pruning["blocks_skipped"] <= pruning["blocks_total"]
        # The top-K selection survives pruning bit for bit.
        k = floored.num_cliques
        assert canonical_cliques(floored.largest(k)) == canonical_cliques(
            baseline.largest(k)
        )

    def test_trace_counts_skipped_blocks(self, planted):
        executor = SharedMemoryExecutor(max_workers=2)
        floor = 9
        result = find_max_cliques(
            planted, 40, executor=executor, min_clique_size=floor
        )
        trace = executor.last_trace
        assert trace is not None
        assert trace.skipped_block_count == result.pruning["blocks_skipped"]
        for record in trace.bounds:
            assert record.floor == floor
            assert record.skipped == (record.bound < floor)

    def test_unfloored_run_has_no_digest(self, planted):
        assert find_max_cliques(planted, 40).pruning is None
        assert "pruning" in find_max_cliques(planted, 40).summary()

    def test_anchor_skipping_counted(self, planted):
        result = find_max_cliques(planted, 40, min_clique_size=9)
        assert result.pruning["anchors_skipped"] >= 0


class TestParallelMaximumClique:
    def test_matches_serial(self, planted):
        expected = maximum_clique(planted)
        found = parallel_maximum_clique(planted, max_workers=3)
        assert planted.is_clique(found)
        assert len(found) == len(expected)

    @pytest.mark.parametrize("seed", range(3))
    def test_random_parity(self, seed):
        g = erdos_renyi(300, 0.22, seed=seed + 40)
        found = parallel_maximum_clique(g, max_workers=2)
        assert g.is_clique(found)
        assert len(found) == len(maximum_clique(g))

    def test_small_graph_takes_serial_path(self):
        g = erdos_renyi(60, 0.3, seed=1)
        found = parallel_maximum_clique(g, max_workers=4)
        assert len(found) == len(maximum_clique(g))

    def test_lower_bound_witness(self, planted):
        omega = len(maximum_clique(planted))
        found = parallel_maximum_clique(planted, max_workers=2, lower_bound=omega)
        assert len(found) == omega

    def test_unmet_bound_raises(self, planted):
        omega = len(maximum_clique(planted))
        with pytest.raises(BoundNotMetError):
            parallel_maximum_clique(planted, max_workers=2, lower_bound=omega + 1)

    def test_empty_graph(self):
        assert parallel_maximum_clique(Graph()) == frozenset()
        with pytest.raises(BoundNotMetError):
            parallel_maximum_clique(Graph(), lower_bound=1)

    def test_negative_bound_rejected(self):
        with pytest.raises(ValueError):
            parallel_maximum_clique(Graph(), lower_bound=-1)


class TestCli:
    @pytest.fixture
    def triples(self, tmp_path, planted):
        path = tmp_path / "net.triples"
        write_triples(planted, path)
        return path

    def test_max_clique_serial(self, triples, capsys):
        assert main(["max-clique", "--input", str(triples)]) == 0
        out = capsys.readouterr().out
        assert "omega(G) = 11" in out
        assert "in-process" in out

    def test_max_clique_parallel(self, triples, capsys):
        code = main(["max-clique", "--input", str(triples), "--workers", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "omega(G) = 11" in out
        assert "2 workers" in out

    def test_max_clique_unmet_bound_errors(self, triples, capsys):
        code = main(
            ["max-clique", "--input", str(triples), "--lower-bound", "99"]
        )
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_top_k_skips_blocks_and_reports(self, triples, capsys):
        code = main(
            ["top-k", "--input", str(triples), "--m", "40", "-k", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "omega(G) = 11" in out
        assert "skipped" in out
        assert "#0: 11 members" in out

    def test_top_k_lowers_floor_until_k_found(self, triples, capsys):
        code = main(
            [
                "top-k",
                "--input",
                str(triples),
                "--m",
                "40",
                "-k",
                "40",
                "--tolerance",
                "0",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "#0: 11 members" in out

    def test_enumerate_with_floor_prints_digest(self, triples, capsys):
        code = main(
            [
                "enumerate",
                "--input",
                str(triples),
                "--m",
                "40",
                "--min-clique-size",
                "9",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "floor 9: skipped" in out

    def test_top_k_validates_arguments(self, triples, capsys):
        assert main(["top-k", "--input", str(triples), "--m", "40", "-k", "0"]) == 1
        assert "error" in capsys.readouterr().err
        code = main(
            [
                "top-k",
                "--input",
                str(triples),
                "--m",
                "40",
                "--tolerance",
                "-1",
            ]
        )
        assert code == 1
        assert "error" in capsys.readouterr().err

"""Unit tests for distance-based relaxed communities."""

from __future__ import annotations

import pytest

from repro.errors import NodeNotFoundError
from repro.graph.adjacency import Graph
from repro.graph.generators import complete_graph, cycle_graph, erdos_renyi, star_graph
from repro.mce.tomita import tomita
from repro.relaxed.distance import (
    bfs_distances,
    diameter,
    graph_power,
    induced_diameter_at_most,
    is_kclub,
    k_clans,
    k_cliques,
    kclubs_from_kclans,
)


def path_graph(n: int) -> Graph:
    return Graph(edges=[(i, i + 1) for i in range(n - 1)], nodes=range(n))


class TestBFS:
    def test_path(self):
        g = path_graph(5)
        assert bfs_distances(g, 0) == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_limit(self):
        g = path_graph(5)
        assert bfs_distances(g, 0, limit=2) == {0: 0, 1: 1, 2: 2}

    def test_disconnected(self):
        g = Graph(edges=[(0, 1)], nodes=[2])
        assert 2 not in bfs_distances(g, 0)

    def test_missing_source(self):
        with pytest.raises(NodeNotFoundError):
            bfs_distances(Graph(), 0)


class TestDiameter:
    def test_path(self):
        assert diameter(path_graph(5)) == 4

    def test_complete(self):
        assert diameter(complete_graph(6)) == 1

    def test_cycle(self):
        assert diameter(cycle_graph(8)) == 4

    def test_singleton(self):
        assert diameter(Graph(nodes=[1])) == 0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            diameter(Graph())

    def test_disconnected_rejected(self):
        with pytest.raises(ValueError):
            diameter(Graph(nodes=[1, 2]))


class TestGraphPower:
    def test_square_of_path(self):
        g = path_graph(4)
        squared = graph_power(g, 2)
        assert squared.has_edge(0, 2)
        assert squared.has_edge(1, 3)
        assert not squared.has_edge(0, 3)

    def test_power_one_is_identity(self):
        g = erdos_renyi(15, 0.3, seed=2)
        assert graph_power(g, 1) == g

    def test_large_k_saturates_connected_graph(self):
        g = cycle_graph(6)
        assert graph_power(g, 10).num_edges == 15  # complete K6

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            graph_power(Graph(), 0)

    def test_matches_networkx_power(self):
        import networkx as nx

        from repro.baselines.networkx_mce import to_networkx

        g = erdos_renyi(20, 0.15, seed=3)
        ours = graph_power(g, 2)
        theirs = nx.power(to_networkx(g), 2)
        assert {frozenset(e) for e in ours.edges()} == {
            frozenset(e) for e in theirs.edges()
        }


class TestKCliques:
    def test_k1_is_mce(self):
        g = erdos_renyi(15, 0.3, seed=4)
        assert set(k_cliques(g, 1)) == set(tomita(g))

    def test_star_is_a_2clique(self):
        # All leaves of a star are within distance 2 of each other.
        g = star_graph(5)
        assert set(k_cliques(g, 2)) == {frozenset(g.nodes())}

    def test_path_2cliques(self):
        g = path_graph(5)
        found = set(k_cliques(g, 2))
        assert frozenset({0, 1, 2}) in found
        assert frozenset({2, 3, 4}) in found


class TestKClans:
    def test_clans_subset_of_cliques(self):
        g = erdos_renyi(15, 0.25, seed=5)
        cliques = set(k_cliques(g, 2))
        clans = set(k_clans(g, 2))
        assert clans <= cliques

    def test_classic_separating_example(self):
        # The 5-cycle with a chord pattern where a 2-clique is not a
        # 2-clan: nodes {0,1,2,3,4} pairwise within distance 2 via the
        # hub 5, but the induced subgraph without 5 has diameter > 2.
        g = Graph(
            edges=[(0, 5), (1, 5), (2, 5), (3, 5), (4, 5), (0, 1), (2, 3)]
        )
        cliques = set(k_cliques(g, 2))
        clans = set(k_clans(g, 2))
        whole = frozenset(range(6))
        assert whole in cliques  # hub 5 makes everything pairwise-close
        assert whole in clans  # and 5 is inside, so induced diameter <= 2
        # Remove the hub from the candidate: not even a 2-clique then.
        assert frozenset(range(5)) not in cliques


class TestKClubs:
    def test_is_kclub_basic(self):
        g = path_graph(4)
        assert is_kclub(g, [0, 1, 2], 2)
        assert not is_kclub(g, [0, 1, 2, 3], 2)
        assert is_kclub(g, [0], 1)
        assert is_kclub(g, [], 1)

    def test_disconnected_candidate_rejected(self):
        g = Graph(edges=[(0, 1), (2, 3)])
        assert not is_kclub(g, [0, 1, 2, 3], 5)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            is_kclub(Graph(), [], 0)

    def test_clans_are_clubs(self):
        g = erdos_renyi(14, 0.25, seed=6)
        for club in kclubs_from_kclans(g, 2):
            assert is_kclub(g, club, 2)

    def test_deduplicated(self):
        g = erdos_renyi(14, 0.25, seed=6)
        clubs = kclubs_from_kclans(g, 2)
        assert len(clubs) == len(set(clubs))


class TestInducedDiameter:
    def test_uses_induced_paths_only(self):
        # 0-1-2 path plus a shortcut through 3 outside the candidate.
        g = Graph(edges=[(0, 1), (1, 2), (0, 3), (3, 2)])
        assert induced_diameter_at_most(g, [0, 1, 2], 2)
        assert not induced_diameter_at_most(g, [0, 2], 1)

"""Unit tests for maximal k-plex enumeration."""

from __future__ import annotations

import itertools

import pytest

from repro.graph.adjacency import Graph
from repro.graph.generators import complete_graph, cycle_graph, erdos_renyi
from repro.mce.tomita import tomita
from repro.relaxed.kplex import (
    is_kplex,
    kplex_deficiencies,
    maximal_kplexes,
    minimum_k,
)


def brute_force_maximal_kplexes(graph: Graph, k: int) -> set[frozenset]:
    """Exponential reference implementation for tiny graphs."""
    nodes = list(graph.nodes())
    plexes = {
        frozenset(subset)
        for size in range(1, len(nodes) + 1)
        for subset in itertools.combinations(nodes, size)
        if is_kplex(graph, set(subset), k)
    }
    return {p for p in plexes if not any(p < q for q in plexes)}


class TestIsKplex:
    def test_clique_is_1plex(self):
        g = complete_graph(4)
        assert is_kplex(g, set(range(4)), 1)

    def test_empty_and_singleton(self):
        g = Graph(nodes=[1])
        assert is_kplex(g, set(), 1)
        assert is_kplex(g, {1}, 1)

    def test_missing_one_edge_is_2plex(self):
        g = complete_graph(4)
        g.remove_edge(0, 1)
        assert not is_kplex(g, set(range(4)), 1)
        assert is_kplex(g, set(range(4)), 2)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            is_kplex(Graph(), set(), 0)

    def test_cycle_is_2plex_up_to_size_4(self):
        g = cycle_graph(4)
        assert is_kplex(g, {0, 1, 2, 3}, 2)

    def test_cycle5_not_2plex(self):
        g = cycle_graph(5)
        # Each node has 2 neighbours but size-1 = 4 > 2 + ... needs >= 3.
        assert not is_kplex(g, set(range(5)), 2)


class TestEnumeration:
    @pytest.mark.parametrize("seed", range(4))
    def test_k1_equals_maximal_cliques(self, seed):
        g = erdos_renyi(13, 0.35, seed=seed)
        assert set(maximal_kplexes(g, 1)) == set(tomita(g))

    @pytest.mark.parametrize("seed", range(4))
    def test_k2_matches_brute_force(self, seed):
        g = erdos_renyi(8, 0.4, seed=seed)
        assert set(maximal_kplexes(g, 2)) == brute_force_maximal_kplexes(g, 2)

    def test_k3_matches_brute_force(self):
        g = erdos_renyi(7, 0.45, seed=11)
        assert set(maximal_kplexes(g, 3)) == brute_force_maximal_kplexes(g, 3)

    def test_no_duplicates(self):
        g = erdos_renyi(10, 0.4, seed=3)
        out = list(maximal_kplexes(g, 2))
        assert len(out) == len(set(out))

    def test_min_size_filters(self):
        g = erdos_renyi(10, 0.3, seed=4)
        everything = set(maximal_kplexes(g, 2))
        large = set(maximal_kplexes(g, 2, min_size=4))
        assert large == {p for p in everything if len(p) >= 4}

    def test_every_output_is_maximal(self):
        g = erdos_renyi(9, 0.45, seed=6)
        for plex in maximal_kplexes(g, 2):
            assert is_kplex(g, plex, 2)
            for extra in set(g.nodes()) - plex:
                assert not is_kplex(g, plex | {extra}, 2)

    def test_empty_graph(self):
        assert list(maximal_kplexes(Graph(), 2)) == []

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            list(maximal_kplexes(Graph(), 0))
        with pytest.raises(ValueError):
            list(maximal_kplexes(Graph(), 2, min_size=0))

    def test_complete_graph_single_plex(self):
        g = complete_graph(5)
        assert list(maximal_kplexes(g, 2)) == [frozenset(range(5))]


class TestDeficiencies:
    def test_clique_deficiencies_zero(self):
        g = complete_graph(4)
        assert set(kplex_deficiencies(g, frozenset(range(4))).values()) == {0}

    def test_minimum_k_clique(self):
        g = complete_graph(4)
        assert minimum_k(g, frozenset(range(4))) == 1

    def test_minimum_k_missing_edge(self):
        g = complete_graph(4)
        g.remove_edge(0, 1)
        assert minimum_k(g, frozenset(range(4))) == 2

    def test_minimum_k_empty(self):
        assert minimum_k(Graph(), frozenset()) == 1

"""Unit tests for the decomposed (degree-split) k-plex enumeration."""

from __future__ import annotations

import pytest

from repro.graph.adjacency import Graph
from repro.graph.generators import complete_graph, erdos_renyi, social_network
from repro.mce.tomita import tomita
from repro.relaxed.kplex import maximal_kplexes
from repro.relaxed.kplex_split import degree_split_kplexes


class TestEquivalenceWithDirect:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("k", [1, 2])
    @pytest.mark.parametrize("threshold", [3, 6, 50])
    def test_matches_direct_enumeration(self, seed, k, threshold):
        g = erdos_renyi(10, 0.35, seed=seed)
        split = degree_split_kplexes(g, k, threshold)
        assert set(split.plexes) == set(maximal_kplexes(g, k))
        assert len(split.plexes) == len(set(split.plexes))

    def test_k1_equals_mce(self):
        g = erdos_renyi(12, 0.3, seed=9)
        split = degree_split_kplexes(g, 1, 4)
        assert set(split.plexes) == set(tomita(g))

    def test_social_structure(self):
        g = social_network(30, attachment=2, planted_cliques=(6,), seed=3)
        split = degree_split_kplexes(g, 2, 5)
        assert set(split.plexes) == set(maximal_kplexes(g, 2))


class TestRecursion:
    def test_rounds_counted(self):
        g = social_network(30, attachment=2, seed=4)
        shallow = degree_split_kplexes(g, 2, g.max_degree() + 1)
        deep = degree_split_kplexes(g, 2, 3)
        assert shallow.rounds == 1
        assert deep.rounds >= shallow.rounds
        assert set(shallow.plexes) == set(deep.plexes)

    def test_residual_core_finished(self):
        # threshold below every degree: round one goes straight to the
        # direct enumerator on the whole graph.
        g = complete_graph(6)
        split = degree_split_kplexes(g, 2, 2)
        assert split.plexes == [frozenset(range(6))]


class TestOptions:
    def test_min_size_filters_output(self):
        g = erdos_renyi(10, 0.3, seed=5)
        everything = degree_split_kplexes(g, 2, 4)
        large = degree_split_kplexes(g, 2, 4, min_size=4)
        assert set(large.plexes) == {
            p for p in everything.plexes if len(p) >= 4
        }

    def test_count_property(self):
        g = erdos_renyi(9, 0.3, seed=6)
        split = degree_split_kplexes(g, 2, 4)
        assert split.count == len(split.plexes)

    def test_empty_graph(self):
        split = degree_split_kplexes(Graph(), 2, 3)
        assert split.plexes == []
        assert split.rounds == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            degree_split_kplexes(Graph(), 0, 3)
        with pytest.raises(ValueError):
            degree_split_kplexes(Graph(), 2, 0)
        with pytest.raises(ValueError):
            degree_split_kplexes(Graph(), 2, 3, min_size=0)

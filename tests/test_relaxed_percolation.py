"""Unit tests for k-clique community percolation."""

from __future__ import annotations

import pytest

from repro.baselines.networkx_mce import to_networkx
from repro.core.driver import find_max_cliques
from repro.graph.adjacency import Graph
from repro.graph.generators import complete_graph, erdos_renyi, social_network
from repro.mce.tomita import tomita
from repro.relaxed.percolation import community_membership, k_clique_communities


class TestKCliqueCommunities:
    def test_two_triangles_sharing_edge_merge(self):
        g = Graph(edges=[(0, 1), (1, 2), (0, 2), (1, 3), (2, 3)])
        communities = k_clique_communities(list(tomita(g)), 3)
        assert communities == [frozenset({0, 1, 2, 3})]

    def test_two_triangles_sharing_node_stay_apart(self):
        g = Graph(edges=[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)])
        communities = k_clique_communities(list(tomita(g)), 3)
        assert len(communities) == 2

    def test_disjoint_cliques(self):
        g = Graph()
        g.add_clique([0, 1, 2, 3])
        g.add_clique([10, 11, 12])
        communities = k_clique_communities(list(tomita(g)), 3)
        assert set(communities) == {
            frozenset({0, 1, 2, 3}),
            frozenset({10, 11, 12}),
        }

    def test_small_cliques_excluded(self):
        g = Graph(edges=[(0, 1)])
        assert k_clique_communities(list(tomita(g)), 3) == []

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            k_clique_communities([], 1)

    @pytest.mark.parametrize("k", [3, 4])
    @pytest.mark.parametrize("seed", range(3))
    def test_matches_networkx(self, k, seed):
        import networkx as nx

        g = erdos_renyi(25, 0.25, seed=seed)
        ours = set(k_clique_communities(list(tomita(g)), k))
        theirs = {
            frozenset(c)
            for c in nx.community.k_clique_communities(to_networkx(g), k)
        }
        assert ours == theirs

    def test_composes_with_two_level_decomposition(self):
        g = social_network(120, attachment=3, planted_cliques=(8, 6), seed=9)
        result = find_max_cliques(g, 20)
        communities = k_clique_communities(result.cliques, 4)
        assert communities
        # Largest-first ordering.
        sizes = [len(c) for c in communities]
        assert sizes == sorted(sizes, reverse=True)

    def test_sorted_deterministically(self):
        g = complete_graph(5)
        a = k_clique_communities(list(tomita(g)), 3)
        b = k_clique_communities(list(tomita(g)), 3)
        assert a == b


class TestMembership:
    def test_overlap_preserved(self):
        communities = [frozenset({1, 2, 3}), frozenset({3, 4, 5})]
        membership = community_membership(communities)
        assert membership[3] == [0, 1]
        assert membership[1] == [0]

    def test_uncovered_nodes_absent(self):
        membership = community_membership([frozenset({1})])
        assert 2 not in membership

"""Robustness tests: awkward inputs the library must handle gracefully.

Mixed label types, very deep recursion, disconnected graphs, huge
planted structures — the inputs a downstream user will eventually feed
in.  Plus crash safety: a shared-memory worker killed mid-batch must
never leak ``/dev/shm`` segments or lose cliques.
"""

from __future__ import annotations

import doctest
import os
import warnings
from pathlib import Path

import pytest

from conftest import nx_cliques
from repro.core.block_analysis import analyze_blocks
from repro.core.blocks import build_blocks
from repro.core.driver import find_max_cliques
from repro.core.feasibility import cut
from repro.distributed.executor import (
    FAULT_INJECT_ENV,
    ProcessExecutor,
    SharedMemoryExecutor,
)
from repro.errors import ExecutorError
from repro.graph.adjacency import Graph
from repro.graph.csr import SHARED_SEGMENT_PREFIX
from repro.graph.generators import (
    disjoint_union,
    erdos_renyi,
    h_n,
    social_network,
)


class TestMixedLabelTypes:
    def test_int_and_str_labels_coexist(self):
        g = Graph(edges=[(1, "a"), ("a", (2, "b")), ((2, "b"), 1)])
        result = find_max_cliques(g, 5)
        assert set(result.cliques) == nx_cliques(g)

    def test_mixed_labels_through_decomposition(self):
        # Blocks sort border/visited nodes by str(), which must not
        # choke on heterogeneous label types.
        g = Graph()
        g.add_clique([1, "one", (1,), 1.5])
        g.add_edge(1, "tail")
        result = find_max_cliques(g, 4)
        assert set(result.cliques) == nx_cliques(g)

    def test_bool_labels(self):
        # True == 1 in Python; the graph treats them as the same node,
        # which is dict semantics, not a crash.
        g = Graph(edges=[(True, "x")])
        g.add_edge(1, "y")
        assert g.num_nodes == 3


class TestDeepRecursion:
    def test_driver_survives_200_levels(self):
        # The level loop is iterative, so the pathological H_n cannot
        # blow Python's recursion limit no matter how many rounds.
        graph = h_n(200, 3)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            result = find_max_cliques(graph, 4)
        assert result.recursion_depth > 150
        assert set(result.cliques) == nx_cliques(graph)


class TestDisconnectedInputs:
    def test_many_components(self):
        parts = [
            social_network(40, attachment=2, seed=s) for s in range(4)
        ]
        g = disjoint_union(parts)
        result = find_max_cliques(g, 15)
        assert set(result.cliques) == nx_cliques(g)

    def test_only_isolated_nodes(self):
        g = Graph(nodes=range(50))
        result = find_max_cliques(g, 2)
        assert result.num_cliques == 50
        assert all(len(c) == 1 for c in result.cliques)


class TestLargePlantedStructure:
    def test_one_giant_clique_dominates(self):
        g = social_network(
            300, attachment=2, closure_probability=0.1,
            planted_cliques=(40,), seed=9,
        )
        result = find_max_cliques(g, 60)
        assert result.max_clique_size() == 40
        assert set(result.cliques) == nx_cliques(g)


def _leaked_segments() -> list[str]:
    """Shared-memory segments of ours still registered with the OS."""
    shm_dir = Path("/dev/shm")
    if not shm_dir.is_dir():  # pragma: no cover - non-POSIX platform
        return []
    return [
        entry.name
        for entry in shm_dir.iterdir()
        if entry.name.startswith(SHARED_SEGMENT_PREFIX)
    ]


@pytest.fixture
def crash_blocks():
    g = social_network(110, attachment=3, planted_cliques=(7,), seed=13)
    feasible, _ = cut(g, 20)
    return g, build_blocks(g, feasible, 20)


class TestSharedMemoryCrashSafety:
    """A worker dying mid-batch must not leak segments or cliques."""

    def test_killed_worker_is_retried_and_segments_reaped(
        self, crash_blocks, monkeypatch
    ):
        graph, blocks = crash_blocks
        assert len(blocks) > 4, "fixture must produce a real batch"
        reference, _ = analyze_blocks(blocks)
        monkeypatch.setenv(FAULT_INJECT_ENV, "kill:3")
        executor = SharedMemoryExecutor(max_workers=2)
        reports = executor.map_blocks(blocks, graph=graph)
        assert [c for r in reports for c in r.cliques] == reference
        assert executor.last_trace is not None
        assert 3 in executor.last_trace.retried_blocks
        assert _leaked_segments() == []

    def test_killed_worker_without_retry_raises_cleanly(
        self, crash_blocks, monkeypatch
    ):
        graph, blocks = crash_blocks
        monkeypatch.setenv(FAULT_INJECT_ENV, "kill:0")
        executor = SharedMemoryExecutor(max_workers=2, retry_failed=False)
        with pytest.raises(ExecutorError, match="worker process died"):
            executor.map_blocks(blocks, graph=graph)
        assert _leaked_segments() == []

    def test_worker_exception_names_the_block(self, crash_blocks, monkeypatch):
        graph, blocks = crash_blocks
        monkeypatch.setenv(FAULT_INJECT_ENV, "raise:2")
        executor = SharedMemoryExecutor(max_workers=2)
        with pytest.raises(ExecutorError, match="block 2") as excinfo:
            executor.map_blocks(blocks, graph=graph)
        assert excinfo.value.block_id == 2
        assert _leaked_segments() == []

    def test_fault_injection_never_fires_in_parent(self, monkeypatch):
        # The hook must be inert outside pool workers, or the injected
        # SIGKILL would take down the test process itself (and the
        # in-parent retry of a killed block would re-trigger the fault).
        from repro.distributed.executor import _maybe_inject_fault

        monkeypatch.setenv(FAULT_INJECT_ENV, "kill:0")
        _maybe_inject_fault(0)  # would SIGKILL this process if it fired
        monkeypatch.setenv(FAULT_INJECT_ENV, "raise:0")
        _maybe_inject_fault(0)  # would raise if it fired
        assert os.environ[FAULT_INJECT_ENV] == "raise:0"


class TestSubtaskCrashSafety:
    """A worker dying mid-subtask retries only that subtask.

    With anchor-level splitting on, the retry unit shrinks from the
    whole block to the anchor range that was actually lost: fragments
    completed before the crash keep their results, and the merged
    report still tiles the block exactly once.
    """

    @pytest.fixture
    def split_batch(self):
        # One dense block, all kernel: the worst case where block-level
        # retry would redo everything from scratch.
        g = erdos_renyi(18, 0.5, seed=5)
        feasible, _ = cut(g, 20)
        blocks = build_blocks(g, feasible, 20)
        assert len(blocks) == 1
        return g, blocks

    @staticmethod
    def _executor(**kwargs):
        return SharedMemoryExecutor(
            max_workers=1, split=True, split_threshold=0.0, split_subtasks=4,
            **kwargs,
        )

    def test_killed_subtask_is_retried_alone(self, split_batch, monkeypatch):
        graph, blocks = split_batch
        reference, _ = analyze_blocks(blocks)
        # Subtask ids are start anchor positions — deterministic for a
        # given graph — so a clean run discovers what to kill.
        clean = self._executor()
        clean.map_blocks(blocks, graph=graph)
        ids = sorted(
            t.subtask_id for t in clean.last_trace.subtasks if t.subtask_id >= 0
        )
        assert len(ids) >= 3, "fixture block must split into several subtasks"
        target = ids[-2]
        monkeypatch.setenv(FAULT_INJECT_ENV, f"kill:0.{target}")
        executor = self._executor()
        reports = executor.map_blocks(blocks, graph=graph)
        assert [c for r in reports for c in r.cliques] == reference
        trace = executor.last_trace
        retried = set(trace.retried_subtasks)
        assert (0, target) in retried
        # Fragments finished before the crash are never recomputed.
        retried_ids = {subtask_id for _, subtask_id in retried}
        assert all(sid not in retried_ids for sid in ids if sid < target)
        assert reports[0].extra.get("retried") == 1.0
        assert _leaked_segments() == []

    def test_killed_subtask_without_retry_raises_cleanly(
        self, split_batch, monkeypatch
    ):
        graph, blocks = split_batch
        monkeypatch.setenv(FAULT_INJECT_ENV, "kill:0.0")
        executor = self._executor(retry_failed=False)
        with pytest.raises(ExecutorError, match="worker process died"):
            executor.map_blocks(blocks, graph=graph)
        assert _leaked_segments() == []


class TestProcessExecutorFailures:
    def test_worker_exception_names_the_block(self, crash_blocks, monkeypatch):
        _, blocks = crash_blocks
        monkeypatch.setenv(FAULT_INJECT_ENV, "raise:4")
        with pytest.raises(ExecutorError, match="block 4") as excinfo:
            ProcessExecutor(max_workers=2).map_blocks(blocks)
        assert excinfo.value.block_id == 4

    def test_killed_worker_raises_executor_error(self, crash_blocks, monkeypatch):
        _, blocks = crash_blocks
        monkeypatch.setenv(FAULT_INJECT_ENV, "kill:1")
        with pytest.raises(ExecutorError, match="worker process died"):
            ProcessExecutor(max_workers=2).map_blocks(blocks)


class TestDoctests:
    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.graph.adjacency",
            "repro.incremental.maintainer",
        ],
    )
    def test_docstring_examples_run(self, module_name):
        import importlib

        module = importlib.import_module(module_name)
        outcome = doctest.testmod(module)
        assert outcome.attempted > 0, f"{module_name} has no doctests"
        assert outcome.failed == 0

"""Robustness tests: awkward inputs the library must handle gracefully.

Mixed label types, very deep recursion, disconnected graphs, huge
planted structures — the inputs a downstream user will eventually feed
in.
"""

from __future__ import annotations

import doctest
import warnings

import pytest

from conftest import nx_cliques
from repro.core.driver import find_max_cliques
from repro.graph.adjacency import Graph
from repro.graph.generators import disjoint_union, h_n, social_network


class TestMixedLabelTypes:
    def test_int_and_str_labels_coexist(self):
        g = Graph(edges=[(1, "a"), ("a", (2, "b")), ((2, "b"), 1)])
        result = find_max_cliques(g, 5)
        assert set(result.cliques) == nx_cliques(g)

    def test_mixed_labels_through_decomposition(self):
        # Blocks sort border/visited nodes by str(), which must not
        # choke on heterogeneous label types.
        g = Graph()
        g.add_clique([1, "one", (1,), 1.5])
        g.add_edge(1, "tail")
        result = find_max_cliques(g, 4)
        assert set(result.cliques) == nx_cliques(g)

    def test_bool_labels(self):
        # True == 1 in Python; the graph treats them as the same node,
        # which is dict semantics, not a crash.
        g = Graph(edges=[(True, "x")])
        g.add_edge(1, "y")
        assert g.num_nodes == 3


class TestDeepRecursion:
    def test_driver_survives_200_levels(self):
        # The level loop is iterative, so the pathological H_n cannot
        # blow Python's recursion limit no matter how many rounds.
        graph = h_n(200, 3)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            result = find_max_cliques(graph, 4)
        assert result.recursion_depth > 150
        assert set(result.cliques) == nx_cliques(graph)


class TestDisconnectedInputs:
    def test_many_components(self):
        parts = [
            social_network(40, attachment=2, seed=s) for s in range(4)
        ]
        g = disjoint_union(parts)
        result = find_max_cliques(g, 15)
        assert set(result.cliques) == nx_cliques(g)

    def test_only_isolated_nodes(self):
        g = Graph(nodes=range(50))
        result = find_max_cliques(g, 2)
        assert result.num_cliques == 50
        assert all(len(c) == 1 for c in result.cliques)


class TestLargePlantedStructure:
    def test_one_giant_clique_dominates(self):
        g = social_network(
            300, attachment=2, closure_probability=0.1,
            planted_cliques=(40,), seed=9,
        )
        result = find_max_cliques(g, 60)
        assert result.max_clique_size() == 40
        assert set(result.cliques) == nx_cliques(g)


class TestDoctests:
    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.graph.adjacency",
            "repro.incremental.maintainer",
        ],
    )
    def test_docstring_examples_run(self, module_name):
        import importlib

        module = importlib.import_module(module_name)
        outcome = doctest.testmod(module)
        assert outcome.attempted > 0, f"{module_name} has no doctests"
        assert outcome.failed == 0

"""The crash-resume matrix: kill points × durable driver modes.

Every cell forks a durable run, SIGKILLs it at a parameterized point
(the parent around the spill boundary, or a pool worker mid-block),
then resumes in-process and asserts the cliques are identical to an
uninterrupted golden run.  The full matrix is ``slow``; the smoke class
runs two representative kill points per mode on every CI run.

The harness itself — kill points, the forked child, orphan/shm sweep,
artifact preservation — lives in :mod:`faults`.
"""

from __future__ import annotations

import pytest

from faults import (
    CRASH_MODES,
    KILL_POINTS,
    SMOKE_KILL_POINTS,
    assert_crash_resume_identical,
    assert_full_replay,
    crash_graph,
    golden_cliques,
)


def matrix(points):
    """Parameter cells (mode, kill) with readable ids."""
    return [
        pytest.param(mode, kill, id=f"{mode}-{kill.name}")
        for mode in CRASH_MODES
        for kill in points
        if kill.applies_to(mode)
    ]


@pytest.fixture(scope="module")
def graph():
    return crash_graph()


@pytest.fixture(scope="module", autouse=True)
def _warm_golden(graph):
    # Computed once per module; assert_crash_resume_identical recomputes
    # per call, so warming the serial path keeps per-cell cost honest.
    golden_cliques(graph)


class TestCrashResumeSmoke:
    """The fast subset: one torn-write parent death, one worker death."""

    @pytest.mark.parametrize(("mode", "kill"), matrix(SMOKE_KILL_POINTS))
    def test_crash_then_resume_matches_golden(
        self, mode, kill, graph, tmp_path
    ):
        assert_crash_resume_identical(mode, kill, tmp_path, graph=graph)
        # Second resume of the now-complete run: everything replays,
        # nothing is re-analysed (the instrumentation-trace form of the
        # acceptance criterion).
        assert_full_replay(mode, tmp_path, graph=graph)


@pytest.mark.slow
class TestCrashResumeMatrix:
    """Every kill point against every durable driver mode."""

    @pytest.mark.parametrize(("mode", "kill"), matrix(KILL_POINTS))
    def test_crash_then_resume_matches_golden(
        self, mode, kill, graph, tmp_path
    ):
        result = assert_crash_resume_identical(mode, kill, tmp_path, graph=graph)
        assert result.run_info["spill_dir"] == str(tmp_path)
        assert_full_replay(mode, tmp_path, graph=graph)

"""Resume semantics of durable (spill-to-disk) runs.

These tests exercise the in-process side of crash-resume: partial runs
produced with the ``raise:`` flavour of the fault hook (the parent
survives, unlike the ``kill:`` crash matrix), resume validation against
the manifest fingerprint, damage handling (torn tails truncated,
mid-file corruption refused), and the error context a durable run
attaches to executor failures.
"""

from __future__ import annotations

import pytest

from faults import CRASH_M, build_executor, crash_graph, golden_cliques
from differential import canonical_cliques
from repro.core.driver import find_max_cliques
from repro.distributed.executor import SharedMemoryExecutor
from repro.errors import (
    CorruptSegmentError,
    ExecutorError,
    ResumeMismatchError,
)
from repro.graph.generators import erdos_renyi
from repro.runs.manifest import load_manifest
from repro.runs.segments import FAULT_INJECT_ENV, SEGMENT_MAGIC, _HEADER


@pytest.fixture(scope="module")
def graph():
    return crash_graph()


@pytest.fixture(scope="module")
def golden(graph):
    return golden_cliques(graph, CRASH_M)


def durable(graph, spill_dir, resume=False, executor=None, pipeline=False):
    return find_max_cliques(
        graph,
        CRASH_M,
        spill_dir=spill_dir,
        resume=resume,
        executor=executor,
        pipeline=pipeline,
    )


def partial_run(graph, spill_dir, monkeypatch, target="spill-pre:0.5"):
    """Run durably until the injected *raise* at ``target``; parent survives."""
    monkeypatch.setenv(FAULT_INJECT_ENV, f"raise:{target}")
    with pytest.raises(RuntimeError, match="injected failure"):
        durable(graph, spill_dir)
    monkeypatch.delenv(FAULT_INJECT_ENV)


class TestResumeValidation:
    def test_resume_requires_spill_dir(self, graph):
        with pytest.raises(ValueError, match="spill_dir"):
            find_max_cliques(graph, CRASH_M, resume=True)

    def test_fresh_run_refuses_existing_manifest(self, graph, tmp_path):
        durable(graph, tmp_path)
        with pytest.raises(ResumeMismatchError, match="already contains"):
            durable(graph, tmp_path)

    def test_resume_without_manifest_refused(self, graph, tmp_path):
        with pytest.raises(ResumeMismatchError, match="nothing to resume"):
            durable(graph, tmp_path, resume=True)

    def test_resume_with_other_block_size_refused(self, graph, tmp_path):
        durable(graph, tmp_path)
        with pytest.raises(ResumeMismatchError, match="m:"):
            find_max_cliques(
                graph, CRASH_M + 2, spill_dir=tmp_path, resume=True
            )

    def test_resume_with_other_graph_refused(self, graph, tmp_path):
        durable(graph, tmp_path)
        other = erdos_renyi(60, 0.2, seed=4)
        with pytest.raises(ResumeMismatchError, match="graph_sha256"):
            durable(other, tmp_path, resume=True)

    def test_resume_across_driver_modes_refused(self, graph, tmp_path):
        # Barrier and pipeline runs decompose identically today, but the
        # mode is part of the strict fingerprint: block ids must mean
        # the same thing in the run that wrote them and the run that
        # skips them.
        durable(graph, tmp_path)
        with pytest.raises(ResumeMismatchError, match="mode"):
            durable(
                graph,
                tmp_path,
                resume=True,
                executor=SharedMemoryExecutor(max_workers=2),
                pipeline=True,
            )


class TestPartialResume:
    def test_partial_serial_run_resumes_to_golden(
        self, graph, golden, tmp_path, monkeypatch
    ):
        partial_run(graph, tmp_path, monkeypatch)
        result = durable(graph, tmp_path, resume=True)
        assert canonical_cliques(result.cliques) == golden
        info = result.run_info
        assert info is not None
        assert info["resumed"]
        # Serial analysis records blocks in id order, so exactly blocks
        # 0–4 of level 0 were durable when the fault fired at block 5.
        assert info["blocks_replayed"] == 5
        assert info["blocks_recorded"] > 0
        assert load_manifest(tmp_path).status == "complete"

    def test_resume_opens_a_fresh_segment(self, graph, tmp_path, monkeypatch):
        partial_run(graph, tmp_path, monkeypatch)
        durable(graph, tmp_path, resume=True)
        manifest = load_manifest(tmp_path)
        assert manifest.segments == ["segment-0000.seg", "segment-0001.seg"]
        assert (tmp_path / "segment-0000.seg").exists()
        assert (tmp_path / "segment-0001.seg").exists()

    def test_cross_executor_resume(self, graph, golden, tmp_path, monkeypatch):
        # Spilled by the serial path, resumed on the shared-memory
        # executor: same barrier fingerprint, same block ids, same
        # cliques — durability is executor-independent.
        partial_run(graph, tmp_path, monkeypatch)
        result = durable(
            graph, tmp_path, resume=True, executor=build_executor("shared")
        )
        assert canonical_cliques(result.cliques) == golden
        assert result.run_info["blocks_replayed"] == 5

    def test_resume_of_complete_run_reanalyses_nothing(
        self, graph, golden, tmp_path
    ):
        durable(graph, tmp_path)
        result = durable(graph, tmp_path, resume=True)
        assert canonical_cliques(result.cliques) == golden
        info = result.run_info
        assert info["blocks_recorded"] == 0
        assert info["blocks_replayed"] > 0
        assert info["flush_bytes"] == 0

    def test_fresh_run_info_digest(self, graph, tmp_path):
        result = durable(graph, tmp_path)
        info = result.run_info
        assert info is not None
        assert not info["resumed"]
        assert info["blocks_replayed"] == 0
        assert info["blocks_recorded"] == sum(
            level.num_blocks for level in result.levels
        )
        assert info["flush_bytes"] > 0
        assert info["flush_seconds"] >= 0.0
        assert info["segments"] == ["segment-0000.seg"]
        assert info["spill_dir"] == str(tmp_path)
        assert result.summary()["run_info"] == info

    def test_in_memory_run_has_no_run_info(self, graph):
        assert find_max_cliques(graph, CRASH_M).run_info is None


class TestDamageHandling:
    def test_torn_tail_is_truncated_on_resume(
        self, graph, golden, tmp_path, monkeypatch
    ):
        partial_run(graph, tmp_path, monkeypatch)
        segment = tmp_path / "segment-0000.seg"
        intact = segment.stat().st_size
        # A torn append: a header whose payload never made it to disk.
        with open(segment, "ab") as fh:
            fh.write(_HEADER.pack(10_000, 0) + b"partial")
        result = durable(graph, tmp_path, resume=True)
        assert canonical_cliques(result.cliques) == golden
        assert segment.stat().st_size == intact
        assert result.run_info["blocks_replayed"] == 5

    def test_mid_file_corruption_refuses_resume(
        self, graph, tmp_path, monkeypatch
    ):
        partial_run(graph, tmp_path, monkeypatch)
        segment = tmp_path / "segment-0000.seg"
        data = bytearray(segment.read_bytes())
        data[len(SEGMENT_MAGIC) + _HEADER.size] ^= 0x01  # first payload byte
        segment.write_bytes(bytes(data))
        with pytest.raises(CorruptSegmentError):
            durable(graph, tmp_path, resume=True)

    def test_duplicate_block_across_segments_refused(
        self, graph, tmp_path, monkeypatch
    ):
        partial_run(graph, tmp_path, monkeypatch)
        segment = tmp_path / "segment-0000.seg"
        (tmp_path / "segment-0001.seg").write_bytes(segment.read_bytes())
        with pytest.raises(CorruptSegmentError, match="recorded twice"):
            durable(graph, tmp_path, resume=True)

    def test_orphan_segment_is_still_recovered(
        self, graph, golden, tmp_path, monkeypatch
    ):
        # A crash between segment creation and the manifest save leaves
        # a segment the manifest never heard of; resume globs the
        # directory, so the orphan's records are replayed anyway.
        partial_run(graph, tmp_path, monkeypatch)
        segment = tmp_path / "segment-0000.seg"
        orphan = tmp_path / "segment-0003.seg"
        orphan.write_bytes(segment.read_bytes())
        segment.unlink()
        result = durable(graph, tmp_path, resume=True)
        assert canonical_cliques(result.cliques) == golden
        assert result.run_info["blocks_replayed"] == 5


class TestExecutorErrorContext:
    def test_worker_death_names_block_and_segment(
        self, graph, tmp_path, monkeypatch
    ):
        # The worker-side kill hook only fires in pool workers (it is
        # gated on having a parent process), so setting it here cannot
        # kill the test session.
        monkeypatch.setenv(FAULT_INJECT_ENV, "kill:5")
        executor = build_executor("shared", retry_failed=False)
        with pytest.raises(ExecutorError) as excinfo:
            durable(graph, tmp_path, executor=executor)
        assert excinfo.value.block_id is not None
        assert excinfo.value.segment_path is not None
        assert excinfo.value.segment_path.startswith(str(tmp_path))

    def test_durable_run_survives_worker_death_with_retry(
        self, graph, golden, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(FAULT_INJECT_ENV, "kill:5")
        executor = build_executor("shared", retry_failed=True)
        result = durable(graph, tmp_path, executor=executor)
        assert canonical_cliques(result.cliques) == golden
        assert load_manifest(tmp_path).status == "complete"

"""Integrity tests for the spill-segment format and the run manifest.

Property-based (hypothesis) round-trips for the record codec and the
manifest serialisation, plus directed tests for every way a segment can
be damaged: a torn tail (accepted by recovery, truncated), a bit flip
mid-file (refused — that is corruption, not a crash signature), and a
foreign file without the magic.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.block_analysis import BlockReport
from repro.errors import CorruptSegmentError, ResumeMismatchError
from repro.graph.adjacency import Graph
from repro.runs.manifest import (
    RunManifest,
    fingerprint_run,
    graph_digest,
    load_manifest,
    manifest_path,
)
from repro.runs.segments import (
    SEGMENT_MAGIC,
    SegmentWriter,
    _HEADER,
    decode_block_record,
    decode_record,
    encode_block_record,
    encode_record,
    read_segment,
    recover_segment,
)

payloads = st.binary(max_size=120)
payload_lists = st.lists(payloads, max_size=8)


def write_file(path, records: list[bytes]) -> bytes:
    """Write a segment file holding ``records``; return its bytes."""
    data = SEGMENT_MAGIC + b"".join(encode_record(r) for r in records)
    path.write_bytes(data)
    return data


def sample_report() -> BlockReport:
    from repro.decision.features import BlockFeatures
    from repro.mce.registry import Combo

    return BlockReport(
        cliques=[frozenset({1, 2, 3}), frozenset({2, 4})],
        combo=Combo("tomita", "lists"),
        features=BlockFeatures(
            num_nodes=5, num_edges=4, density=0.4, degeneracy=2, d_star=2
        ),
        seconds=0.25,
    )


# ---------------------------------------------------------------------------
# Record codec round-trips
# ---------------------------------------------------------------------------
class TestRecordCodec:
    @settings(max_examples=80, deadline=None)
    @given(payloads)
    def test_encode_decode_roundtrip(self, payload):
        record = encode_record(payload)
        decoded, end = decode_record(record, 0)
        assert decoded == payload
        assert end == len(record)

    @settings(max_examples=40, deadline=None)
    @given(payload_lists)
    def test_concatenated_records_decode_in_order(self, items):
        data = b"".join(encode_record(p) for p in items)
        offset, out = 0, []
        while offset < len(data):
            payload, offset = decode_record(data, offset)
            out.append(payload)
        assert out == items

    @settings(max_examples=60, deadline=None)
    @given(payloads, st.integers(min_value=0, max_value=10_000))
    def test_truncated_record_is_refused(self, payload, cut):
        record = encode_record(payload)
        cut = min(cut, len(record) - 1)  # strictly shorter than the record
        with pytest.raises(CorruptSegmentError):
            decode_record(record[:cut], 0)

    @settings(max_examples=60, deadline=None)
    @given(payloads, st.integers(min_value=0), st.integers(1, 7))
    def test_bit_flip_is_refused(self, payload, pos, bit):
        record = bytearray(encode_record(payload))
        pos %= len(record)
        record[pos] ^= 1 << bit
        with pytest.raises(CorruptSegmentError):
            decode_record(bytes(record), 0)

    def test_error_carries_path_and_offset(self):
        with pytest.raises(CorruptSegmentError) as excinfo:
            decode_record(b"\x00", 0, path="seg-x")
        assert excinfo.value.path == "seg-x"
        assert excinfo.value.offset == 0


class TestBlockRecordCodec:
    def test_roundtrip_preserves_the_report(self):
        report = sample_report()
        level, block_id, back = decode_block_record(
            encode_block_record(2, 7, report)
        )
        assert (level, block_id) == (2, 7)
        assert back.cliques == report.cliques
        assert back.seconds == report.seconds

    @settings(max_examples=40, deadline=None)
    @given(payloads)
    def test_foreign_payload_is_refused(self, payload):
        # Arbitrary bytes (even with a valid CRC at the record layer)
        # must never silently decode into a block record.
        with pytest.raises(CorruptSegmentError):
            decode_block_record(payload)


# ---------------------------------------------------------------------------
# Segment files: writer, strict reader, recovery
# ---------------------------------------------------------------------------
class TestSegmentFiles:
    @settings(max_examples=30, deadline=None)
    @given(payload_lists)
    def test_writer_reader_roundtrip(self, items):
        import tempfile, os

        fd, name = tempfile.mkstemp(suffix=".seg")
        os.close(fd)
        os.unlink(name)
        try:
            with SegmentWriter(name) as writer:
                for item in items:
                    writer.append(item)
            assert list(read_segment(name)) == items
            recovered, valid = recover_segment(name)
            assert recovered == items
            from pathlib import Path

            assert valid == Path(name).stat().st_size
        finally:
            import contextlib

            with contextlib.suppress(OSError):
                os.unlink(name)

    def test_reopen_appends_without_rewriting_magic(self, tmp_path):
        path = tmp_path / "a.seg"
        with SegmentWriter(path) as writer:
            writer.append(b"one")
        with SegmentWriter(path) as writer:
            writer.append(b"two")
        assert list(read_segment(path)) == [b"one", b"two"]
        assert path.read_bytes().count(SEGMENT_MAGIC) == 1

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(payloads, min_size=1, max_size=6),
        st.integers(min_value=1, max_value=10_000),
    )
    def test_torn_tail_recovers_the_intact_prefix(self, items, torn):
        import os, tempfile
        from pathlib import Path

        fd, name = tempfile.mkstemp(suffix=".seg")
        os.close(fd)
        path = Path(name)
        try:
            data = write_file(path, items)
            # Cut somewhere strictly inside the final record.
            last = len(data) - len(encode_record(items[-1]))
            cut = last + (torn % (len(data) - last))
            path.write_bytes(data[:cut])

            recovered, valid = recover_segment(path)
            assert recovered == items[:-1]
            assert valid == last
            # The strict reader refuses the same file outright (unless
            # the cut removed the torn record entirely).
            if cut > last:
                with pytest.raises(CorruptSegmentError):
                    list(read_segment(path))
        finally:
            os.unlink(name)

    def test_mid_file_payload_bit_flip_is_corruption(self, tmp_path):
        path = tmp_path / "seg.seg"
        data = bytearray(write_file(path, [b"alpha", b"beta", b"gamma"]))
        # Flip one payload bit of the *first* record: intact records
        # follow, so this cannot be a torn write.
        data[len(SEGMENT_MAGIC) + _HEADER.size] ^= 0x01
        path.write_bytes(bytes(data))
        with pytest.raises(CorruptSegmentError):
            recover_segment(path)
        with pytest.raises(CorruptSegmentError):
            list(read_segment(path))

    def test_final_record_bit_flip_is_treated_as_torn(self, tmp_path):
        # A CRC failure with nothing after it is indistinguishable from
        # a torn write, so recovery drops it; the strict reader refuses.
        path = tmp_path / "seg.seg"
        data = bytearray(write_file(path, [b"alpha", b"beta"]))
        data[-1] ^= 0x80
        path.write_bytes(bytes(data))
        recovered, valid = recover_segment(path)
        assert recovered == [b"alpha"]
        assert valid == len(SEGMENT_MAGIC) + len(encode_record(b"alpha"))
        with pytest.raises(CorruptSegmentError):
            list(read_segment(path))

    def test_length_field_flip_truncates_reachable_records(self, tmp_path):
        # A bit flip in a mid-file *length* field can make the record
        # claim to extend to EOF; recovery then cannot distinguish it
        # from a torn tail and (documented behaviour) truncates the
        # later — individually intact but unreachable — records.  They
        # are re-analysed on resume, never silently lost.
        path = tmp_path / "seg.seg"
        records = [b"alpha", b"beta", b"gamma"]
        data = bytearray(write_file(path, records))
        offset = len(SEGMENT_MAGIC) + len(encode_record(b"alpha"))
        length = int.from_bytes(data[offset : offset + 4], "little")
        tail = len(data) - (offset + _HEADER.size)
        data[offset : offset + 4] = (length + tail).to_bytes(4, "little")
        path.write_bytes(bytes(data))
        recovered, valid = recover_segment(path)
        assert recovered == [b"alpha"]
        assert valid == offset

    def test_bad_magic_is_refused_by_both_readers(self, tmp_path):
        path = tmp_path / "seg.seg"
        path.write_bytes(b"NOTASEG0" + encode_record(b"payload"))
        with pytest.raises(CorruptSegmentError):
            list(read_segment(path))
        with pytest.raises(CorruptSegmentError):
            recover_segment(path)

    def test_empty_file_recovers_to_nothing(self, tmp_path):
        # A crash between creation and the first sync: nothing to
        # replay, recovery reports zero valid bytes.
        path = tmp_path / "seg.seg"
        path.write_bytes(b"")
        assert recover_segment(path) == ([], 0)
        with pytest.raises(CorruptSegmentError):
            list(read_segment(path))

    def test_magic_only_file_is_a_valid_empty_segment(self, tmp_path):
        path = tmp_path / "seg.seg"
        path.write_bytes(SEGMENT_MAGIC)
        assert list(read_segment(path)) == []
        assert recover_segment(path) == ([], len(SEGMENT_MAGIC))


# ---------------------------------------------------------------------------
# Manifest serialisation
# ---------------------------------------------------------------------------
fingerprints = st.fixed_dictionaries(
    {
        "graph_sha256": st.text(alphabet="0123456789abcdef", min_size=8, max_size=8),
        "num_nodes": st.integers(min_value=0, max_value=10**6),
        "num_edges": st.integers(min_value=0, max_value=10**6),
        "m": st.integers(min_value=2, max_value=10**4),
        "min_adjacency": st.integers(min_value=0, max_value=64),
        "mode": st.sampled_from(["barrier", "pipeline"]),
        "combo": st.none() | st.text(max_size=12),
    }
)
completed_maps = st.dictionaries(
    st.integers(min_value=0, max_value=6),
    st.sets(st.integers(min_value=0, max_value=200), max_size=12),
    max_size=4,
)


class TestManifest:
    @settings(max_examples=60, deadline=None)
    @given(
        fingerprints,
        completed_maps,
        st.lists(st.text(min_size=1, max_size=20), max_size=4),
        st.sampled_from(["running", "complete"]),
    )
    def test_json_roundtrip_through_real_json(
        self, fingerprint, completed, segments, status
    ):
        manifest = RunManifest(
            fingerprint=fingerprint,
            completed=completed,
            segments=segments,
            status=status,
        )
        wire = json.loads(json.dumps(manifest.to_json()))
        back = RunManifest.from_json(wire)
        assert back.fingerprint == fingerprint
        assert back.completed == {k: v for k, v in completed.items()}
        assert back.segments == segments
        assert back.status == status
        assert back.to_json() == manifest.to_json()

    @settings(max_examples=40, deadline=None)
    @given(fingerprints, completed_maps)
    def test_completion_queries_match_the_map(self, fingerprint, completed):
        manifest = RunManifest(fingerprint=fingerprint, completed=completed)
        for level, ids in completed.items():
            for block_id in ids:
                assert manifest.is_completed(level, block_id)
        assert not manifest.is_completed(99, 0)
        assert manifest.num_completed() == sum(map(len, completed.values()))

    def test_save_load_roundtrip(self, tmp_path):
        manifest = RunManifest(
            fingerprint={"graph_sha256": "ab", "m": 12},
            completed={0: {1, 2}, 1: {0}},
            segments=["segment-0000.seg"],
        )
        manifest.save(tmp_path)
        back = load_manifest(tmp_path)
        assert back.to_json() == manifest.to_json()
        # No temp files left behind by the atomic rewrite.
        assert sorted(p.name for p in tmp_path.iterdir()) == ["manifest.json"]

    def test_malformed_payload_raises_typed_error(self):
        with pytest.raises(ResumeMismatchError):
            RunManifest.from_json({"status": "running"})  # no fingerprint
        with pytest.raises(ResumeMismatchError):
            RunManifest.from_json(
                {"fingerprint": {}, "completed": {"zero": [1]}}
            )

    def test_truncated_manifest_file_raises_typed_error(self, tmp_path):
        manifest = RunManifest(fingerprint={"m": 12})
        manifest.save(tmp_path)
        text = manifest_path(tmp_path).read_text()
        manifest_path(tmp_path).write_text(text[: len(text) // 2])
        with pytest.raises(ResumeMismatchError):
            load_manifest(tmp_path)

    def test_missing_manifest_raises_typed_error(self, tmp_path):
        with pytest.raises(ResumeMismatchError):
            load_manifest(tmp_path)

    def test_non_object_manifest_raises_typed_error(self, tmp_path):
        manifest_path(tmp_path).write_text("[1, 2, 3]")
        with pytest.raises(ResumeMismatchError):
            load_manifest(tmp_path)

    def test_fingerprint_mismatch_names_the_keys(self):
        graph = Graph(edges=[(0, 1), (1, 2)])
        stored = fingerprint_run(graph, m=12, min_adjacency=2, mode="barrier")
        manifest = RunManifest(fingerprint=stored)
        manifest.validate_fingerprint(stored)  # identical: fine
        changed = fingerprint_run(graph, m=13, min_adjacency=2, mode="pipeline")
        with pytest.raises(ResumeMismatchError) as excinfo:
            manifest.validate_fingerprint(changed)
        assert "m:" in str(excinfo.value)
        assert "mode:" in str(excinfo.value)

    def test_combo_is_not_a_strict_key(self):
        # Every combo enumerates the same cliques, so resuming with a
        # different algorithm/backend choice is allowed.
        graph = Graph(edges=[(0, 1)])
        stored = fingerprint_run(
            graph, m=12, min_adjacency=2, mode="barrier", combo="tomita"
        )
        manifest = RunManifest(fingerprint=stored)
        manifest.validate_fingerprint(
            fingerprint_run(
                graph, m=12, min_adjacency=2, mode="barrier", combo="anchored"
            )
        )

    def test_graph_digest_is_content_addressed(self):
        a = Graph(edges=[(0, 1), (1, 2)])
        b = Graph(edges=[(1, 2), (0, 1)])  # same content, other order
        c = Graph(edges=[(0, 1), (0, 2)])
        assert graph_digest(a) == graph_digest(b)
        assert graph_digest(a) != graph_digest(c)

"""Bounded at-scale confidence runs on the largest stand-in."""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.slow

from repro.core.audit import audit_result
from repro.core.driver import find_max_cliques
from repro.core.planner import recommend_block_size
from repro.graph.datasets import load_dataset


@pytest.fixture(scope="module")
def twitter3():
    return load_dataset("twitter3")


def test_largest_standin_full_run(twitter3):
    plan = recommend_block_size(twitter3)
    result = find_max_cliques(twitter3, plan.m, fallback="raise")
    assert result.num_cliques == 37764  # golden
    assert result.max_clique_size() == 33
    # Structural audit only; completeness would double the runtime and
    # is already covered by the golden clique count.
    report = audit_result(twitter3, result, check_completeness=False)
    assert report.ok, report.problems[:3]


def test_largest_standin_distributed_equivalence(twitter3):
    from repro.distributed.runner import run_distributed

    plan = recommend_block_size(twitter3)
    distributed = run_distributed(twitter3, plan.m)
    assert distributed.num_cliques == 37764
    assert distributed.simulated_speedup() >= 1.0
